//! Performance-baseline snapshots and regression gating.
//!
//! A [`Baseline`] is the digest `repro --baseline-out` writes and
//! `repro --check` compares against: for every paper figure, the
//! bandwidth at each (series, x) point, the placement spreads, and —
//! for the figures that exercise the DMA fabric — the per-path latency
//! percentiles and phase attribution from
//! [`LatencyMetrics`](crate::latency::LatencyMetrics).
//!
//! The file embeds the [`ExperimentConfig`] it was collected with and
//! the [`config_fingerprint`] of the machine model. `--check` re-runs
//! the *baseline's* experiment config (so a committed quick-scale
//! baseline stays fast to verify) and reports every drifted value; a
//! changed machine model shows up both as a fingerprint mismatch and as
//! value drifts, each naming the figure and metric that moved.
//!
//! Intentional modelling changes are re-baselined by regenerating the
//! file with `--baseline-out` and committing it alongside the change.

use std::fmt;

use crate::exec::{config_fingerprint, SweepExecutor};
use crate::experiments::{self, ExperimentConfig, ExperimentError};
use crate::json::{self, JsonValue};
use crate::latency::DmaPathClass;
use crate::metrics::MetricsSummary;
use crate::report::{Figure, SpreadFigure};
use crate::CellSystem;

/// Format version of the baseline file; bumped on schema changes.
pub const BASELINE_VERSION: u64 = 1;

/// One recorded bandwidth point of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPoint {
    /// Series label ("2 SPEs", "get", …).
    pub series: String,
    /// Swept-parameter label ("128 B", …).
    pub x: String,
    /// Bandwidth in GB/s, rounded to the file's 6-decimal precision.
    pub gbps: f64,
}

/// The bandwidth digest of one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureDigest {
    /// Figure id ("8a", "10", …).
    pub id: String,
    /// Every (series, x) point, in figure order.
    pub points: Vec<BandwidthPoint>,
}

/// One row of a placement-spread figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadRow {
    /// Swept-parameter label.
    pub x: String,
    /// min/median/mean/max over placements, rounded to 6 decimals.
    pub stats: [f64; 4],
}

/// The digest of one spread figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadDigest {
    /// Figure id ("13a", "16b", …).
    pub id: String,
    /// One row per swept value.
    pub rows: Vec<SpreadRow>,
}

/// The latency-percentile digest of one path of one figure's sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDigest {
    /// Path name ("mem-get", …).
    pub path: String,
    /// Commands retired on the path.
    pub commands: u64,
    /// p50/p95/p99/max end-to-end latency in bus cycles.
    pub percentiles: [u64; 4],
    /// Σ cycles per phase (queue/slot/ring/service).
    pub phase_cycles: [u64; 4],
}

/// The latency digest of one fabric figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyDigest {
    /// Figure id ("8", "10", …).
    pub figure: String,
    /// Per-path digests in [`DmaPathClass::ALL`] order.
    pub paths: Vec<PathDigest>,
    /// count/p50/p95/p99/max of the element-service histogram.
    pub element_service: [u64; 5],
}

/// A committed performance snapshot: what `--check` gates against.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// [`config_fingerprint`] of the machine model that produced it.
    pub config_fingerprint: u64,
    /// Relative tolerance band recorded at collection time (e.g. `0.01`
    /// = 1 %); `--check-tolerance` overrides it.
    pub tolerance: f64,
    /// The experiment protocol the snapshot covers; `--check` re-runs
    /// exactly this.
    pub experiment: ExperimentConfig,
    /// Per-figure bandwidth points.
    pub figures: Vec<FigureDigest>,
    /// Per-figure placement spreads.
    pub spreads: Vec<SpreadDigest>,
    /// Per-figure latency digests (fabric figures only).
    pub latency: Vec<LatencyDigest>,
}

/// One value that moved outside the tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// What moved, e.g. `figure 8a ["2 SPEs" @ 128 B] GB/s` or
    /// `figure 8 latency mem-get p95`.
    pub location: String,
    /// The recorded value.
    pub baseline: f64,
    /// The just-measured value.
    pub current: f64,
}

impl Drift {
    fn relative(&self) -> f64 {
        let scale = self.baseline.abs().max(self.current.abs());
        if scale == 0.0 {
            0.0
        } else {
            (self.baseline - self.current).abs() / scale
        }
    }
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {} -> current {} ({:+.2}%)",
            self.location,
            self.baseline,
            self.current,
            100.0 * self.relative()
        )
    }
}

/// Why a baseline file could not be read.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineError {
    /// What is wrong, with the JSON path that broke.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid baseline: {}", self.message)
    }
}

impl std::error::Error for BaselineError {}

fn bad(message: impl Into<String>) -> BaselineError {
    BaselineError {
        message: message.into(),
    }
}

/// Rounds through the file's 6-decimal representation so collected and
/// re-parsed values compare bit-identically.
fn round6(x: f64) -> f64 {
    format!("{x:.6}")
        .parse()
        .expect("formatted float re-parses")
}

impl Baseline {
    /// Runs the whole experiment suite on `exec` and digests it.
    ///
    /// # Errors
    ///
    /// The first [`ExperimentError`] any figure reports.
    pub fn collect(
        exec: &SweepExecutor,
        system: &CellSystem,
        cfg: &ExperimentConfig,
        tolerance: f64,
    ) -> Result<Baseline, ExperimentError> {
        let (figures, spreads) = experiments::all_figures_with(exec, system, cfg)?;
        let mut latency = Vec::new();
        for id in experiments::FIGURE_IDS {
            if let Some(summary) = experiments::figure_metrics_with(exec, system, cfg, id)? {
                latency.push(LatencyDigest::from_summary(id, &summary));
            }
        }
        Ok(Baseline {
            config_fingerprint: config_fingerprint(system.config()),
            tolerance,
            experiment: cfg.clone(),
            figures: figures.iter().map(FigureDigest::from_figure).collect(),
            spreads: spreads.iter().map(SpreadDigest::from_figure).collect(),
            latency,
        })
    }

    /// Compares `current` (freshly collected) against this (recorded)
    /// baseline and returns every drift outside `tolerance` (defaults
    /// to the recorded [`Baseline::tolerance`]). Missing or extra
    /// figures, series and paths are drifts too — a schema change must
    /// re-baseline explicitly.
    pub fn compare(&self, current: &Baseline, tolerance: Option<f64>) -> Vec<Drift> {
        let tol = tolerance.unwrap_or(self.tolerance);
        let mut drifts = Vec::new();
        fn gate(drifts: &mut Vec<Drift>, tol: f64, location: String, baseline: f64, current: f64) {
            let d = Drift {
                location,
                baseline,
                current,
            };
            if d.relative() > tol || !tol.is_finite() {
                drifts.push(d);
            }
        }
        if self.config_fingerprint != current.config_fingerprint {
            drifts.push(Drift {
                location: "machine config fingerprint".into(),
                baseline: self.config_fingerprint as f64,
                current: current.config_fingerprint as f64,
            });
        }
        if self.experiment != current.experiment {
            drifts.push(Drift {
                location: "experiment config".into(),
                baseline: 0.0,
                current: 1.0,
            });
        }
        for fig in &self.figures {
            let Some(cur) = current.figures.iter().find(|c| c.id == fig.id) else {
                drifts.push(Drift {
                    location: format!("figure {}: missing from current run", fig.id),
                    baseline: fig.points.len() as f64,
                    current: 0.0,
                });
                continue;
            };
            for p in &fig.points {
                match cur
                    .points
                    .iter()
                    .find(|c| c.series == p.series && c.x == p.x)
                {
                    Some(c) => gate(
                        &mut drifts,
                        tol,
                        format!("figure {} [{:?} @ {}] GB/s", fig.id, p.series, p.x),
                        p.gbps,
                        c.gbps,
                    ),
                    None => drifts.push(Drift {
                        location: format!(
                            "figure {} [{:?} @ {}]: point missing from current run",
                            fig.id, p.series, p.x
                        ),
                        baseline: p.gbps,
                        current: f64::NAN,
                    }),
                }
            }
        }
        for fig in &current.figures {
            if !self.figures.iter().any(|b| b.id == fig.id) {
                drifts.push(Drift {
                    location: format!("figure {}: not in baseline (re-baseline?)", fig.id),
                    baseline: 0.0,
                    current: fig.points.len() as f64,
                });
            }
        }
        for sp in &self.spreads {
            let Some(cur) = current.spreads.iter().find(|c| c.id == sp.id) else {
                drifts.push(Drift {
                    location: format!("spread {}: missing from current run", sp.id),
                    baseline: sp.rows.len() as f64,
                    current: 0.0,
                });
                continue;
            };
            const STATS: [&str; 4] = ["min", "median", "mean", "max"];
            for row in &sp.rows {
                match cur.rows.iter().find(|c| c.x == row.x) {
                    Some(c) => {
                        for (name, (b, v)) in STATS.iter().zip(row.stats.iter().zip(c.stats.iter()))
                        {
                            gate(
                                &mut drifts,
                                tol,
                                format!("spread {} [{} {}] GB/s", sp.id, row.x, name),
                                *b,
                                *v,
                            );
                        }
                    }
                    None => drifts.push(Drift {
                        location: format!(
                            "spread {} [{}]: row missing from current run",
                            sp.id, row.x
                        ),
                        baseline: row.stats[0],
                        current: f64::NAN,
                    }),
                }
            }
        }
        const PCTS: [&str; 4] = ["p50", "p95", "p99", "max"];
        for lat in &self.latency {
            let Some(cur) = current.latency.iter().find(|c| c.figure == lat.figure) else {
                drifts.push(Drift {
                    location: format!("figure {} latency: missing from current run", lat.figure),
                    baseline: lat.paths.len() as f64,
                    current: 0.0,
                });
                continue;
            };
            for path in &lat.paths {
                let Some(c) = cur.paths.iter().find(|c| c.path == path.path) else {
                    drifts.push(Drift {
                        location: format!(
                            "figure {} latency {}: path missing from current run",
                            lat.figure, path.path
                        ),
                        baseline: path.commands as f64,
                        current: 0.0,
                    });
                    continue;
                };
                gate(
                    &mut drifts,
                    tol,
                    format!("figure {} latency {} commands", lat.figure, path.path),
                    path.commands as f64,
                    c.commands as f64,
                );
                for (name, (b, v)) in PCTS
                    .iter()
                    .zip(path.percentiles.iter().zip(c.percentiles.iter()))
                {
                    gate(
                        &mut drifts,
                        tol,
                        format!("figure {} latency {} {}", lat.figure, path.path, name),
                        *b as f64,
                        *v as f64,
                    );
                }
                for (phase, (b, v)) in ["queue-wait", "slot-wait", "ring-wait", "service"]
                    .iter()
                    .zip(path.phase_cycles.iter().zip(c.phase_cycles.iter()))
                {
                    gate(
                        &mut drifts,
                        tol,
                        format!(
                            "figure {} latency {} phase {}",
                            lat.figure, path.path, phase
                        ),
                        *b as f64,
                        *v as f64,
                    );
                }
            }
            for (name, (b, v)) in ["count", "p50", "p95", "p99", "max"]
                .iter()
                .zip(lat.element_service.iter().zip(cur.element_service.iter()))
            {
                gate(
                    &mut drifts,
                    tol,
                    format!("figure {} latency element-service {}", lat.figure, name),
                    *b as f64,
                    *v as f64,
                );
            }
        }
        drifts
    }

    /// Serializes the baseline as deterministic JSON (keys in fixed
    /// order, floats at 6 decimals, one line).
    pub fn to_json(&self) -> String {
        let sizes: Vec<String> = self
            .experiment
            .dma_elem_sizes
            .iter()
            .map(u32::to_string)
            .collect();
        let figures: Vec<String> = self
            .figures
            .iter()
            .map(|f| {
                let points: Vec<String> = f
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"series\":\"{}\",\"x\":\"{}\",\"gbps\":{:.6}}}",
                            json::escape(&p.series),
                            json::escape(&p.x),
                            p.gbps
                        )
                    })
                    .collect();
                format!(
                    "{{\"id\":\"{}\",\"points\":[{}]}}",
                    json::escape(&f.id),
                    points.join(",")
                )
            })
            .collect();
        let spreads: Vec<String> = self
            .spreads
            .iter()
            .map(|s| {
                let rows: Vec<String> = s
                    .rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"x\":\"{}\",\"min\":{:.6},\"median\":{:.6},\
                             \"mean\":{:.6},\"max\":{:.6}}}",
                            json::escape(&r.x),
                            r.stats[0],
                            r.stats[1],
                            r.stats[2],
                            r.stats[3]
                        )
                    })
                    .collect();
                format!(
                    "{{\"id\":\"{}\",\"rows\":[{}]}}",
                    json::escape(&s.id),
                    rows.join(",")
                )
            })
            .collect();
        let latency: Vec<String> = self
            .latency
            .iter()
            .map(|l| {
                let paths: Vec<String> = l
                    .paths
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"path\":\"{}\",\"commands\":{},\
                             \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\
                             \"phase_cycles\":[{},{},{},{}]}}",
                            json::escape(&p.path),
                            p.commands,
                            p.percentiles[0],
                            p.percentiles[1],
                            p.percentiles[2],
                            p.percentiles[3],
                            p.phase_cycles[0],
                            p.phase_cycles[1],
                            p.phase_cycles[2],
                            p.phase_cycles[3]
                        )
                    })
                    .collect();
                let es = l.element_service;
                format!(
                    "{{\"figure\":\"{}\",\"paths\":[{}],\
                     \"element_service\":{{\"count\":{},\"p50\":{},\
                     \"p95\":{},\"p99\":{},\"max\":{}}}}}",
                    json::escape(&l.figure),
                    paths.join(","),
                    es[0],
                    es[1],
                    es[2],
                    es[3],
                    es[4]
                )
            })
            .collect();
        format!(
            "{{\"version\":{},\"config_fingerprint\":{},\"tolerance\":{:.6},\
             \"experiment\":{{\"volume_per_spe\":{},\"dma_elem_sizes\":[{}],\
             \"placements\":{},\"seed\":{}}},\
             \"figures\":[{}],\"spreads\":[{}],\"latency\":[{}]}}\n",
            BASELINE_VERSION,
            self.config_fingerprint,
            self.tolerance,
            self.experiment.volume_per_spe,
            sizes.join(","),
            self.experiment.placements,
            self.experiment.seed,
            figures.join(","),
            spreads.join(","),
            latency.join(",")
        )
    }

    /// Parses a baseline file.
    ///
    /// # Errors
    ///
    /// [`BaselineError`] naming the missing or malformed field.
    pub fn from_json(text: &str) -> Result<Baseline, BaselineError> {
        let doc = json::parse(text).map_err(|e| bad(e.to_string()))?;
        let version = field_u64(&doc, "version")?;
        if version != BASELINE_VERSION {
            return Err(bad(format!(
                "unsupported baseline version {version} (expected {BASELINE_VERSION})"
            )));
        }
        let experiment = doc
            .get("experiment")
            .ok_or_else(|| bad("missing 'experiment'"))?;
        let sizes = experiment
            .get("dma_elem_sizes")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'experiment.dma_elem_sizes'"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("bad element size"))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let cfg = ExperimentConfig {
            volume_per_spe: field_u64(experiment, "volume_per_spe")?,
            dma_elem_sizes: sizes,
            placements: usize::try_from(field_u64(experiment, "placements")?)
                .map_err(|_| bad("placements out of range"))?,
            seed: field_u64(experiment, "seed")?,
        };
        let figures = doc
            .get("figures")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'figures'"))?
            .iter()
            .map(|f| {
                let id = field_str(f, "id")?;
                let points = f
                    .get("points")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad(format!("figure {id}: missing 'points'")))?
                    .iter()
                    .map(|p| {
                        Ok(BandwidthPoint {
                            series: field_str(p, "series")?,
                            x: field_str(p, "x")?,
                            gbps: field_f64(p, "gbps")?,
                        })
                    })
                    .collect::<Result<Vec<_>, BaselineError>>()?;
                Ok(FigureDigest { id, points })
            })
            .collect::<Result<Vec<_>, BaselineError>>()?;
        let spreads = doc
            .get("spreads")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'spreads'"))?
            .iter()
            .map(|s| {
                let id = field_str(s, "id")?;
                let rows = s
                    .get("rows")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad(format!("spread {id}: missing 'rows'")))?
                    .iter()
                    .map(|r| {
                        Ok(SpreadRow {
                            x: field_str(r, "x")?,
                            stats: [
                                field_f64(r, "min")?,
                                field_f64(r, "median")?,
                                field_f64(r, "mean")?,
                                field_f64(r, "max")?,
                            ],
                        })
                    })
                    .collect::<Result<Vec<_>, BaselineError>>()?;
                Ok(SpreadDigest { id, rows })
            })
            .collect::<Result<Vec<_>, BaselineError>>()?;
        let latency = doc
            .get("latency")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'latency'"))?
            .iter()
            .map(|l| {
                let figure = field_str(l, "figure")?;
                let paths = l
                    .get("paths")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad(format!("latency {figure}: missing 'paths'")))?
                    .iter()
                    .map(|p| {
                        let phases = p
                            .get("phase_cycles")
                            .and_then(JsonValue::as_array)
                            .filter(|a| a.len() == 4)
                            .ok_or_else(|| bad("bad 'phase_cycles'"))?;
                        let mut phase_cycles = [0u64; 4];
                        for (slot, v) in phase_cycles.iter_mut().zip(phases) {
                            *slot = v.as_u64().ok_or_else(|| bad("bad phase cycle"))?;
                        }
                        Ok(PathDigest {
                            path: field_str(p, "path")?,
                            commands: field_u64(p, "commands")?,
                            percentiles: [
                                field_u64(p, "p50")?,
                                field_u64(p, "p95")?,
                                field_u64(p, "p99")?,
                                field_u64(p, "max")?,
                            ],
                            phase_cycles,
                        })
                    })
                    .collect::<Result<Vec<_>, BaselineError>>()?;
                let es = l
                    .get("element_service")
                    .ok_or_else(|| bad(format!("latency {figure}: missing 'element_service'")))?;
                Ok(LatencyDigest {
                    figure,
                    paths,
                    element_service: [
                        field_u64(es, "count")?,
                        field_u64(es, "p50")?,
                        field_u64(es, "p95")?,
                        field_u64(es, "p99")?,
                        field_u64(es, "max")?,
                    ],
                })
            })
            .collect::<Result<Vec<_>, BaselineError>>()?;
        Ok(Baseline {
            config_fingerprint: field_u64(&doc, "config_fingerprint")?,
            tolerance: field_f64(&doc, "tolerance")?,
            experiment: cfg,
            figures,
            spreads,
            latency,
        })
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer '{key}'")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric '{key}'")))
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string '{key}'")))
}

impl FigureDigest {
    fn from_figure(fig: &Figure) -> FigureDigest {
        FigureDigest {
            id: fig.id.clone(),
            points: fig
                .series
                .iter()
                .flat_map(|s| {
                    s.points.iter().map(|p| BandwidthPoint {
                        series: s.label.clone(),
                        x: p.x.clone(),
                        gbps: round6(p.gbps),
                    })
                })
                .collect(),
        }
    }
}

impl SpreadDigest {
    fn from_figure(fig: &SpreadFigure) -> SpreadDigest {
        SpreadDigest {
            id: fig.id.clone(),
            rows: fig
                .rows
                .iter()
                .map(|(x, s)| SpreadRow {
                    x: x.clone(),
                    stats: [
                        round6(s.min),
                        round6(s.median),
                        round6(s.mean),
                        round6(s.max),
                    ],
                })
                .collect(),
        }
    }
}

impl LatencyDigest {
    fn from_summary(figure: &str, summary: &MetricsSummary) -> LatencyDigest {
        let paths = DmaPathClass::ALL
            .iter()
            .enumerate()
            .map(|(pi, path)| {
                let p = &summary.latency.paths[pi];
                let h = &p.end_to_end;
                PathDigest {
                    path: path.name().to_string(),
                    commands: p.commands,
                    percentiles: [h.percentile(50), h.percentile(95), h.percentile(99), h.max],
                    phase_cycles: p.phase_cycles,
                }
            })
            .collect();
        let es = &summary.latency.element_service;
        LatencyDigest {
            figure: figure.to_string(),
            paths,
            element_service: [
                es.count,
                es.percentile(50),
                es.percentile(95),
                es.percentile(99),
                es.max,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            config_fingerprint: 0xDEAD_BEEF_u64,
            tolerance: 0.01,
            experiment: ExperimentConfig::quick(),
            figures: vec![FigureDigest {
                id: "8a".into(),
                points: vec![BandwidthPoint {
                    series: "1 SPE".into(),
                    x: "128 B".into(),
                    gbps: 1.234567,
                }],
            }],
            spreads: vec![SpreadDigest {
                id: "13a".into(),
                rows: vec![SpreadRow {
                    x: "16 KB".into(),
                    stats: [1.0, 2.0, 2.5, 4.0],
                }],
            }],
            latency: vec![LatencyDigest {
                figure: "8".into(),
                paths: vec![PathDigest {
                    path: "mem-get".into(),
                    commands: 256,
                    percentiles: [100, 200, 300, 400],
                    phase_cycles: [10, 20, 30, 40],
                }],
                element_service: [256, 90, 180, 270, 360],
            }],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let b = sample();
        let parsed = Baseline::from_json(&b.to_json()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn identical_baselines_have_no_drift() {
        let b = sample();
        assert!(b.compare(&b.clone(), None).is_empty());
        // Even at zero tolerance: values are bit-identical.
        assert!(b.compare(&b.clone(), Some(0.0)).is_empty());
    }

    #[test]
    fn value_drift_names_the_figure_and_metric() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures[0].points[0].gbps = 2.0;
        cur.latency[0].paths[0].percentiles[1] = 900;
        let drifts = b.compare(&cur, None);
        assert_eq!(drifts.len(), 2);
        assert!(drifts[0].location.contains("figure 8a"));
        assert!(drifts[0].location.contains("128 B"));
        assert!(drifts[1].location.contains("latency mem-get p95"));
    }

    #[test]
    fn fingerprint_mismatch_is_a_drift() {
        let b = sample();
        let mut cur = b.clone();
        cur.config_fingerprint ^= 1;
        let drifts = b.compare(&cur, None);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].location.contains("fingerprint"));
    }

    #[test]
    fn tolerance_band_filters_small_drift() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures[0].points[0].gbps *= 1.005; // +0.5%
        assert!(b.compare(&cur, None).is_empty(), "inside 1% band");
        assert_eq!(b.compare(&cur, Some(0.001)).len(), 1, "outside 0.1%");
        // A perturbed (negative) tolerance fails everything measurable.
        assert!(!b.compare(&b.clone(), Some(-1.0)).is_empty());
    }

    #[test]
    fn missing_figure_is_reported() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures.clear();
        let drifts = b.compare(&cur, None);
        assert!(drifts
            .iter()
            .any(|d| d.location.contains("figure 8a: missing")));
    }

    #[test]
    fn malformed_files_name_the_field() {
        let err = Baseline::from_json("{}").unwrap_err();
        assert!(err.message.contains("version"));
        let err = Baseline::from_json("not json").unwrap_err();
        assert!(err.message.contains("JSON error"));
    }
}
