//! Per-DMA-command latency accounting: deterministic log2-bucket
//! histograms with phase attribution.
//!
//! Every command the fabric retires carries a
//! [`CommandLifecycle`](cellsim_mfc::CommandLifecycle) stamped at each
//! point it passed through (enqueue, MFC slot grant, unroll, EIB ring
//! grants, bank service, tag-group completion). This module folds those
//! records into [`LatencyMetrics`]: integer-only histograms and counters
//! that are bit-identical no matter how a sweep is parallelized —
//! aggregation is per-run and commutative over runs, with no floats in
//! the accumulation path.
//!
//! Raw records are *not* retained (a paper-scale sweep retires millions
//! of commands); each is observed once at retirement and dropped.

use std::fmt;

use cellsim_mfc::{CommandLifecycle, DmaKind, DmaPhase, TargetClass};

/// Number of log2 buckets. Bucket 0 holds exact zeros; bucket `k ≥ 1`
/// holds values in `[2^(k−1), 2^k − 1]`. 48 buckets cover every latency
/// the simulator can express (the safety horizon is < 2^36 cycles).
pub const LATENCY_BUCKETS: usize = 48;

/// The bucket a value lands in.
fn bucket_of(value: u64) -> usize {
    let bits = (64 - value.leading_zeros()) as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

/// The largest value bucket `idx` can hold (its reported upper edge).
fn bucket_upper_edge(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A deterministic integer-only latency histogram with log2 buckets.
///
/// Percentiles are *bucket-edge* percentiles: the upper edge of the
/// bucket holding the rank-`⌈p·n/100⌉` observation, clamped to the exact
/// observed maximum. They are exact for the max, conservative (an upper
/// bound, within 2× of the true value) for interior percentiles, and —
/// unlike sampled percentiles — identical for any observation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Observations folded in.
    pub count: u64,
    /// Σ observed values (for exact integer means).
    pub total: u64,
    /// Exact maximum observed value.
    pub max: u64,
    /// Log2 bucket counts; see [`LATENCY_BUCKETS`].
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            total: 0,
            max: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Folds one observation in.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.total += value;
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Merges another histogram (order-independent: merge of observes is
    /// the observe of the union).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The bucket-edge percentile for `p` in `0..=100`, clamped to the
    /// observed max; 0 when empty. Monotone in `p` by construction
    /// (higher rank → same or later bucket → same or larger edge), so
    /// `p50 ≤ p95 ≤ p99 ≤ max` always holds.
    pub fn percentile(&self, p: u64) -> u64 {
        assert!(p <= 100, "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        // Rank of the percentile observation, 1-based, rounding up.
        let rank = (p * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Exact integer mean (rounded down); 0 when empty.
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }
}

/// The traffic paths latency is broken down by. PPE microbenchmarks are
/// analytic (they never traverse the fabric), so the fabric paths are
/// the four MFC command shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaPathClass {
    /// SPE ← main memory (GET).
    MemGet,
    /// SPE → main memory (PUT).
    MemPut,
    /// SPE ← remote Local Store (GET).
    LsGet,
    /// SPE → remote Local Store (PUT).
    LsPut,
}

impl DmaPathClass {
    /// All paths in reporting order.
    pub const ALL: [DmaPathClass; 4] = [
        DmaPathClass::MemGet,
        DmaPathClass::MemPut,
        DmaPathClass::LsGet,
        DmaPathClass::LsPut,
    ];

    /// Stable reporting name.
    pub fn name(self) -> &'static str {
        match self {
            DmaPathClass::MemGet => "mem-get",
            DmaPathClass::MemPut => "mem-put",
            DmaPathClass::LsGet => "ls-get",
            DmaPathClass::LsPut => "ls-put",
        }
    }

    /// The path a lifecycle record belongs to.
    pub fn of(life: &CommandLifecycle) -> DmaPathClass {
        match (life.target, life.kind) {
            (TargetClass::Memory, DmaKind::Get) => DmaPathClass::MemGet,
            (TargetClass::Memory, DmaKind::Put) => DmaPathClass::MemPut,
            (TargetClass::LocalStore, DmaKind::Get) => DmaPathClass::LsGet,
            (TargetClass::LocalStore, DmaKind::Put) => DmaPathClass::LsPut,
        }
    }
}

impl fmt::Display for DmaPathClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Latency accounting for one [`DmaPathClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathLatency {
    /// Commands retired on this path.
    pub commands: u64,
    /// End-to-end (enqueue → tag completion) latency distribution.
    pub end_to_end: LatencyHistogram,
    /// Σ cycles per lifecycle phase, in [`DmaPhase::ALL`] order. Each
    /// command's four phases sum to its end-to-end latency, so these sum
    /// to `end_to_end.total` (conservation).
    pub phase_cycles: [u64; 4],
    /// Commands whose dominant phase was each of [`DmaPhase::ALL`];
    /// sums to `commands`.
    pub dominant_counts: [u64; 4],
    /// Transient NACKs observed by commands on this path.
    pub nacks: u64,
    /// Backoff retries performed in response to those NACKs.
    pub retries: u64,
    /// Σ retry backoff cycles across the path's commands. Backoff elapses
    /// between issue and delivery, so these cycles are already inside
    /// `phase_cycles` (ring-wait/service) — this field *attributes* them
    /// without adding a fifth phase, preserving the exact four-phase sum.
    pub retry_backoff_cycles: u64,
    /// Commands that exhausted their retry budget (some payload bytes
    /// were never delivered).
    pub exhausted_commands: u64,
}

impl PathLatency {
    /// Folds one lifecycle record in.
    pub fn observe(&mut self, life: &CommandLifecycle) {
        self.commands += 1;
        self.end_to_end.observe(life.latency());
        for (acc, cycles) in self.phase_cycles.iter_mut().zip(life.phases()) {
            *acc += cycles;
        }
        let dom = life.dominant_phase();
        let idx = DmaPhase::ALL
            .iter()
            .position(|&p| p == dom)
            .expect("phase in ALL");
        self.dominant_counts[idx] += 1;
        self.nacks += u64::from(life.nacks);
        self.retries += u64::from(life.retries);
        self.retry_backoff_cycles += life.retry_backoff_cycles;
        self.exhausted_commands += u64::from(life.exhausted);
    }

    /// Merges another path accumulator.
    pub fn merge(&mut self, other: &PathLatency) {
        self.commands += other.commands;
        self.end_to_end.merge(&other.end_to_end);
        for (a, b) in self.phase_cycles.iter_mut().zip(other.phase_cycles) {
            *a += b;
        }
        for (a, b) in self.dominant_counts.iter_mut().zip(other.dominant_counts) {
            *a += b;
        }
        self.nacks += other.nacks;
        self.retries += other.retries;
        self.retry_backoff_cycles += other.retry_backoff_cycles;
        self.exhausted_commands += other.exhausted_commands;
    }
}

/// The per-run (and, merged, per-sweep-point) latency digest carried in
/// [`FabricReport`](crate::FabricReport) next to
/// [`FabricMetrics`](crate::FabricMetrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyMetrics {
    /// Per-path accounting, in [`DmaPathClass::ALL`] order.
    pub paths: [PathLatency; 4],
    /// Distribution of per-list-element service latency (first packet
    /// issue → element retired) across all paths — the latency a
    /// double-buffering depth is tuned against.
    pub element_service: LatencyHistogram,
}

impl LatencyMetrics {
    /// Folds one retired command's lifecycle in.
    pub fn observe(&mut self, life: &CommandLifecycle) {
        let idx = DmaPathClass::ALL
            .iter()
            .position(|&p| p == DmaPathClass::of(life))
            .expect("path in ALL");
        self.paths[idx].observe(life);
        for elem in &life.element_records {
            self.element_service.observe(elem.service_latency());
        }
    }

    /// Merges another digest (runs of a sweep point, or sweep points of
    /// a figure). Commutative and associative, so any fan-out order —
    /// serial, `--jobs N`, cached — produces bit-identical sums.
    pub fn merge(&mut self, other: &LatencyMetrics) {
        for (a, b) in self.paths.iter_mut().zip(other.paths.iter()) {
            a.merge(b);
        }
        self.element_service.merge(&other.element_service);
    }

    /// The accounting for one path.
    pub fn path(&self, path: DmaPathClass) -> &PathLatency {
        let idx = DmaPathClass::ALL
            .iter()
            .position(|&p| p == path)
            .expect("path in ALL");
        &self.paths[idx]
    }

    /// Commands retired across all paths.
    pub fn total_commands(&self) -> u64 {
        self.paths.iter().map(|p| p.commands).sum()
    }

    /// End-to-end distribution folded over all paths.
    pub fn end_to_end(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::default();
        for p in &self.paths {
            all.merge(&p.end_to_end);
        }
        all
    }

    /// Σ cycles per phase over all paths, in [`DmaPhase::ALL`] order.
    pub fn phase_cycles(&self) -> [u64; 4] {
        let mut sums = [0u64; 4];
        for p in &self.paths {
            for (a, b) in sums.iter_mut().zip(p.phase_cycles) {
                *a += b;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(10), 1023);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = LatencyHistogram::default();
        for v in [3u64, 5, 9, 100, 101, 102, 900] {
            h.observe(v);
        }
        let p50 = h.percentile(50);
        let p95 = h.percentile(95);
        let p99 = h.percentile(99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max);
        assert_eq!(h.percentile(100), 900, "p100 is the exact max");
        assert_eq!(h.percentile(0), h.percentile(1), "p0 clamps to rank 1");
    }

    #[test]
    fn merge_equals_union_of_observes() {
        let vals_a = [0u64, 1, 7, 64, 4096];
        let vals_b = [2u64, 2, 900000];
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut union = LatencyHistogram::default();
        for &v in &vals_a {
            a.observe(v);
            union.observe(v);
        }
        for &v in &vals_b {
            b.observe(v);
            union.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max, 0);
    }
}
