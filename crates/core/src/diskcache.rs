//! Persistent, self-healing run cache: one JSON file per [`RunKey`].
//!
//! [`SweepExecutor`](crate::exec::SweepExecutor) memoizes reports in
//! memory for the life of the process; this module extends that identity
//! to disk so an interrupted paper-scale sweep resumes from its completed
//! points. The contract is strict:
//!
//! * **Bit-identical replay.** A loaded report compares equal — including
//!   every `f64`, which is stored as its IEEE bit pattern — to the report
//!   the original run computed, so a resumed sweep renders byte-identical
//!   figures at any `--jobs`.
//! * **Atomic writes.** Entries are written to a unique temp file and
//!   `rename`d into place; a killed process leaves either the old entry,
//!   the complete new one, or stray temp files — never a torn entry.
//! * **Never trust, always verify.** Every load re-parses the entry,
//!   re-serializes the report canonically, and compares an FNV-1a content
//!   checksum plus the schema version and the full [`RunKey`] (machine
//!   config and fault-plan fingerprints included). Any mismatch — a
//!   truncated file, a flipped bit, an entry written by a different
//!   machine config — is silently discarded and recomputed.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cellsim_eib::{EibStats, RingStats};
use cellsim_mem::{BankId, BankStats};

use crate::exec::RunKey;
use crate::fabric::FabricReport;
use crate::json::{self, JsonValue};
use crate::latency::{LatencyHistogram, LatencyMetrics, PathLatency};
use crate::metrics::{BankMetrics, FabricMetrics, FaultStats, SpeMetrics};

/// Entry format version; bumped whenever [`FabricReport`]'s persisted
/// shape changes, so stale-schema entries self-heal by recomputation.
const SCHEMA: u64 = 2;

/// Counters of disk-cache activity (see
/// [`SweepExecutor::disk_stats`](crate::exec::SweepExecutor::disk_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Entries loaded and verified.
    pub loaded: u64,
    /// Entries written.
    pub stored: u64,
    /// Entries found corrupt or stale, removed, and recomputed.
    pub discarded: u64,
}

/// A point-in-time census of the cache *directory* — as opposed to
/// [`DiskCacheStats`], which counts this process's activity. A shared
/// `--cache-dir` is written by every `cellsim-serve` worker and every
/// CLI invocation pointed at it, so operational visibility (how big has
/// the shared dir grown?) needs a scan, not process counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskDirStats {
    /// Committed entry files (`<hash>.json`).
    pub entries: u64,
    /// Total bytes across committed entries.
    pub bytes: u64,
    /// Leftover temp files from killed writers. Harmless (entries are
    /// temp-file + rename), but a monotone count signals crashed peers.
    pub temp_files: u64,
}

/// A directory of verified run-report entries.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    loaded: AtomicU64,
    stored: AtomicU64,
    discarded: AtomicU64,
    tmp_counter: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the directory.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            loaded: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Activity counters since open.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// The entry file for `key`.
    pub fn entry_path(&self, key: &RunKey) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv1a(key_json(key).as_bytes())))
    }

    /// Scans the directory and reports its current census. Errors
    /// reading the directory (or racing deletions mid-scan) degrade to
    /// smaller counts — this is operational telemetry, not a contract.
    pub fn dir_stats(&self) -> DiskDirStats {
        let mut stats = DiskDirStats::default();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".tmp-") {
                stats.temp_files += 1;
            } else if name.ends_with(".json") {
                stats.entries += 1;
                if let Ok(meta) = entry.metadata() {
                    stats.bytes += meta.len();
                }
            }
        }
        stats
    }

    /// Loads and verifies `key`'s entry. A missing entry returns `None`;
    /// a corrupt or stale one is removed and returns `None` (the caller
    /// recomputes — the cache never surfaces unverified data).
    pub fn load(&self, key: &RunKey) -> Option<FabricReport> {
        let path = self.entry_path(key);
        let text = crate::iofault::read_to_string(&path).ok()?;
        match validate(key, &text) {
            Some(report) => {
                self.loaded.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Writes `key`'s entry atomically (unique temp file, then rename).
    /// Write errors are swallowed: the cache is an accelerator, never a
    /// correctness dependency — a failed store only costs a recompute.
    pub fn store(&self, key: &RunKey, report: &FabricReport) {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = crate::iofault::write(&tmp, entry_json(key, report))
            .and_then(|()| crate::iofault::rename(&tmp, self.entry_path(key)));
        match written {
            Ok(()) => {
                self.stored.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
}

/// FNV-1a, 64-bit — the same pinned hash as
/// [`config_fingerprint`](crate::exec::config_fingerprint), chosen over
/// `DefaultHasher` because the standard library's algorithm may change
/// across Rust releases, which would orphan every persisted entry.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical JSON of a [`RunKey`]: names the entry file and is embedded
/// in the entry (and in every trace-store manifest) so loads verify the
/// full cache identity, not just the filename hash.
#[must_use]
pub fn key_json(key: &RunKey) -> String {
    let w = &key.workload;
    format!(
        "{{\"config\":{},\"faults\":{},\"pattern\":\"{}\",\"spes\":{},\
         \"volume\":{},\"elem\":{},\"list\":{},\"sync\":\"{}\",\
         \"params\":{},\"placement\":{}}}",
        key.config,
        key.faults,
        json::escape(w.pattern),
        w.spes,
        w.volume,
        w.elem,
        w.list,
        json::escape(&format!("{:?}", w.sync)),
        w.params,
        u64_array(key.placement.iter().map(|&p| u64::from(p)))
    )
}

fn entry_json(key: &RunKey, report: &FabricReport) -> String {
    let body = report_json(report);
    format!(
        "{{\"schema\":{SCHEMA},\"checksum\":\"{:016x}\",\"key\":{},\"report\":{}}}\n",
        fnv1a(body.as_bytes()),
        key_json(key),
        body
    )
}

/// Full verification: schema version, key identity, and the content
/// checksum recomputed over the canonical re-serialization of the parsed
/// report — a corrupted byte anywhere changes one of the three.
fn validate(key: &RunKey, text: &str) -> Option<FabricReport> {
    let v = json::parse(text).ok()?;
    if v.get("schema")?.as_u64()? != SCHEMA {
        return None;
    }
    let expected = json::parse(&key_json(key)).expect("canonical key JSON parses");
    if v.get("key")? != &expected {
        return None;
    }
    let report = parse_report(v.get("report")?)?;
    let canonical = report_json(&report);
    if v.get("checksum")?.as_str()? != format!("{:016x}", fnv1a(canonical.as_bytes())) {
        return None;
    }
    Some(report)
}

/// Stable 64-bit fingerprint of a [`RunKey`] (FNV-1a over its canonical
/// JSON): the disk cache's entry filename, and the compact identity the
/// serve protocol reports per streamed result.
#[must_use]
pub fn key_fingerprint(key: &RunKey) -> u64 {
    fnv1a(key_json(key).as_bytes())
}

/// Serializes a [`FabricReport`] to canonical one-line JSON. Every
/// `f64` is stored as its IEEE bit pattern, so
/// [`report_from_json`]`(parse(report_to_json(r))) == r` holds
/// bit-for-bit — the property both the disk cache and the serve wire
/// protocol rely on for exact replay.
#[must_use]
pub fn report_to_json(report: &FabricReport) -> String {
    report_json(report)
}

/// Parses a report serialized by [`report_to_json`]. Returns `None` on
/// any structural mismatch (wrong shape, missing field, stale schema).
#[must_use]
pub fn report_from_json(v: &JsonValue) -> Option<FabricReport> {
    parse_report(v)
}

// ---- canonical emission -------------------------------------------------

fn u64_array(values: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = values.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// `f64`s persist as IEEE-754 bit patterns so replays are bit-identical
/// (decimal round-trips are not, and NaN payloads would not survive).
fn bits_array(values: &[f64]) -> String {
    u64_array(values.iter().map(|v| v.to_bits()))
}

fn hist_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"total\":{},\"max\":{},\"buckets\":{}}}",
        h.count,
        h.total,
        h.max,
        u64_array(h.buckets.iter().copied())
    )
}

fn path_json(p: &PathLatency) -> String {
    format!(
        "{{\"commands\":{},\"end_to_end\":{},\"phase_cycles\":{},\
         \"dominant_counts\":{},\"nacks\":{},\"retries\":{},\
         \"retry_backoff_cycles\":{},\"exhausted_commands\":{}}}",
        p.commands,
        hist_json(&p.end_to_end),
        u64_array(p.phase_cycles.iter().copied()),
        u64_array(p.dominant_counts.iter().copied()),
        p.nacks,
        p.retries,
        p.retry_backoff_cycles,
        p.exhausted_commands
    )
}

fn spe_json(m: &SpeMetrics) -> String {
    format!(
        "{{\"busy_cycles\":{},\"idle_cycles\":{},\"stall_mfc_full_cycles\":{},\
         \"stall_sync_cycles\":{},\"stall_eib_cycles\":{},\"stall_mem_cycles\":{},\
         \"occupancy_cycles\":{}}}",
        m.busy_cycles,
        m.idle_cycles,
        m.stall_mfc_full_cycles,
        m.stall_sync_cycles,
        m.stall_eib_cycles,
        m.stall_mem_cycles,
        u64_array(m.occupancy_cycles.iter().copied())
    )
}

fn bank_name(bank: BankId) -> &'static str {
    match bank {
        BankId::Local => "local",
        BankId::Remote => "remote",
    }
}

fn bank_json(b: &BankMetrics) -> String {
    let s = &b.stats;
    format!(
        "{{\"bank\":\"{}\",\"accesses\":{},\"bytes\":{},\"turnaround_cycles\":{},\
         \"refresh_cycles\":{},\"busy_cycles\":{},\"conflicts\":{}}}",
        bank_name(b.bank),
        s.accesses,
        s.bytes,
        s.turnaround_cycles,
        s.refresh_cycles,
        s.busy_cycles,
        s.conflicts
    )
}

fn metrics_json(m: &FabricMetrics) -> String {
    let spes: Vec<String> = m.per_spe.iter().map(spe_json).collect();
    let rings: Vec<String> = m
        .rings
        .iter()
        .map(|r| {
            format!(
                "{{\"grants\":{},\"bytes\":{},\"busy_cycles\":{}}}",
                r.grants, r.bytes, r.busy_cycles
            )
        })
        .collect();
    let banks: Vec<String> = m.banks.iter().map(bank_json).collect();
    let f = &m.faults;
    format!(
        "{{\"run_cycles\":{},\"per_spe\":[{}],\"rings\":[{}],\"banks\":[{}],\
         \"faults\":{{\"nacks\":{},\"retries\":{},\"retries_exhausted\":{},\
         \"abandoned_packets\":{},\"degraded_cycles\":{}}},\
         \"events\":{},\"suppressed_pumps\":{},\"peak_live_packets\":{}}}",
        m.run_cycles,
        spes.join(","),
        rings.join(","),
        banks.join(","),
        f.nacks,
        f.retries,
        f.retries_exhausted,
        f.abandoned_packets,
        f.degraded_cycles,
        m.events,
        m.suppressed_pumps,
        m.peak_live_packets
    )
}

fn report_json(r: &FabricReport) -> String {
    let paths: Vec<String> = r.latency.paths.iter().map(path_json).collect();
    format!(
        "{{\"cycles\":{},\"total_bytes\":{},\"aggregate_gbps_bits\":{},\
         \"sum_gbps_bits\":{},\"per_spe_bytes\":{},\"per_spe_cycles\":{},\
         \"per_spe_gbps_bits\":{},\"eib\":{{\"grants\":{},\"bytes\":{},\
         \"wait_cycles\":{},\"segment_cycles\":{}}},\"packets\":{},\
         \"metrics\":{},\"latency\":{{\"paths\":[{}],\"element_service\":{}}}}}",
        r.cycles,
        r.total_bytes,
        r.aggregate_gbps.to_bits(),
        r.sum_gbps.to_bits(),
        u64_array(r.per_spe_bytes.iter().copied()),
        u64_array(r.per_spe_cycles.iter().copied()),
        bits_array(&r.per_spe_gbps),
        r.eib.grants,
        r.eib.bytes,
        r.eib.wait_cycles,
        r.eib.segment_cycles,
        r.packets,
        metrics_json(&r.metrics),
        paths.join(","),
        hist_json(&r.latency.element_service)
    )
}

// ---- verified parsing ---------------------------------------------------

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn get_u64_vec(v: &JsonValue, key: &str) -> Option<Vec<u64>> {
    v.get(key)?
        .as_array()?
        .iter()
        .map(JsonValue::as_u64)
        .collect()
}

fn get_f64_bits(v: &JsonValue, key: &str) -> Option<f64> {
    Some(f64::from_bits(get_u64(v, key)?))
}

fn parse_hist(v: &JsonValue) -> Option<LatencyHistogram> {
    Some(LatencyHistogram {
        count: get_u64(v, "count")?,
        total: get_u64(v, "total")?,
        max: get_u64(v, "max")?,
        buckets: get_u64_vec(v, "buckets")?.try_into().ok()?,
    })
}

fn parse_path(v: &JsonValue) -> Option<PathLatency> {
    Some(PathLatency {
        commands: get_u64(v, "commands")?,
        end_to_end: parse_hist(v.get("end_to_end")?)?,
        phase_cycles: get_u64_vec(v, "phase_cycles")?.try_into().ok()?,
        dominant_counts: get_u64_vec(v, "dominant_counts")?.try_into().ok()?,
        nacks: get_u64(v, "nacks")?,
        retries: get_u64(v, "retries")?,
        retry_backoff_cycles: get_u64(v, "retry_backoff_cycles")?,
        exhausted_commands: get_u64(v, "exhausted_commands")?,
    })
}

fn parse_spe(v: &JsonValue) -> Option<SpeMetrics> {
    Some(SpeMetrics {
        busy_cycles: get_u64(v, "busy_cycles")?,
        idle_cycles: get_u64(v, "idle_cycles")?,
        stall_mfc_full_cycles: get_u64(v, "stall_mfc_full_cycles")?,
        stall_sync_cycles: get_u64(v, "stall_sync_cycles")?,
        stall_eib_cycles: get_u64(v, "stall_eib_cycles")?,
        stall_mem_cycles: get_u64(v, "stall_mem_cycles")?,
        occupancy_cycles: get_u64_vec(v, "occupancy_cycles")?,
    })
}

fn parse_bank(v: &JsonValue) -> Option<BankMetrics> {
    let bank = match v.get("bank")?.as_str()? {
        "local" => BankId::Local,
        "remote" => BankId::Remote,
        _ => return None,
    };
    Some(BankMetrics {
        bank,
        stats: BankStats {
            accesses: get_u64(v, "accesses")?,
            bytes: get_u64(v, "bytes")?,
            turnaround_cycles: get_u64(v, "turnaround_cycles")?,
            refresh_cycles: get_u64(v, "refresh_cycles")?,
            busy_cycles: get_u64(v, "busy_cycles")?,
            conflicts: get_u64(v, "conflicts")?,
        },
    })
}

fn parse_metrics(v: &JsonValue) -> Option<FabricMetrics> {
    let per_spe = v
        .get("per_spe")?
        .as_array()?
        .iter()
        .map(parse_spe)
        .collect::<Option<Vec<_>>>()?;
    let rings = v
        .get("rings")?
        .as_array()?
        .iter()
        .map(|r| {
            Some(RingStats {
                grants: get_u64(r, "grants")?,
                bytes: get_u64(r, "bytes")?,
                busy_cycles: get_u64(r, "busy_cycles")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let banks = v
        .get("banks")?
        .as_array()?
        .iter()
        .map(parse_bank)
        .collect::<Option<Vec<_>>>()?;
    let f = v.get("faults")?;
    Some(FabricMetrics {
        run_cycles: get_u64(v, "run_cycles")?,
        per_spe,
        rings,
        banks,
        faults: FaultStats {
            nacks: get_u64(f, "nacks")?,
            retries: get_u64(f, "retries")?,
            retries_exhausted: get_u64(f, "retries_exhausted")?,
            abandoned_packets: get_u64(f, "abandoned_packets")?,
            degraded_cycles: get_u64(f, "degraded_cycles")?,
        },
        events: get_u64(v, "events")?,
        suppressed_pumps: get_u64(v, "suppressed_pumps")?,
        peak_live_packets: get_u64(v, "peak_live_packets")?,
    })
}

fn parse_report(v: &JsonValue) -> Option<FabricReport> {
    let eib = v.get("eib")?;
    let lat = v.get("latency")?;
    let paths: [PathLatency; 4] = lat
        .get("paths")?
        .as_array()?
        .iter()
        .map(parse_path)
        .collect::<Option<Vec<_>>>()?
        .try_into()
        .ok()?;
    let per_spe_gbps: Vec<f64> = get_u64_vec(v, "per_spe_gbps_bits")?
        .into_iter()
        .map(f64::from_bits)
        .collect();
    Some(FabricReport {
        cycles: get_u64(v, "cycles")?,
        total_bytes: get_u64(v, "total_bytes")?,
        aggregate_gbps: get_f64_bits(v, "aggregate_gbps_bits")?,
        sum_gbps: get_f64_bits(v, "sum_gbps_bits")?,
        per_spe_bytes: get_u64_vec(v, "per_spe_bytes")?,
        per_spe_cycles: get_u64_vec(v, "per_spe_cycles")?,
        per_spe_gbps,
        eib: EibStats {
            grants: get_u64(eib, "grants")?,
            bytes: get_u64(eib, "bytes")?,
            wait_cycles: get_u64(eib, "wait_cycles")?,
            segment_cycles: get_u64(eib, "segment_cycles")?,
        },
        packets: get_u64(v, "packets")?,
        metrics: parse_metrics(v.get("metrics")?)?,
        latency: LatencyMetrics {
            paths,
            element_service: parse_hist(lat.get("element_service")?)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{RunSpec, Workload};
    use crate::{CellSystem, Placement, SyncPolicy, TransferPlan};
    use std::sync::Arc;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cellsim-dc-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (RunKey, FabricReport) {
        let system = CellSystem::blade();
        let plan = Arc::new(
            TransferPlan::builder()
                .get_from_memory(0, 64 << 10, 4096, SyncPolicy::AfterAll)
                .build()
                .unwrap(),
        );
        let spec = RunSpec::new(
            &system,
            Workload {
                pattern: "mem-get",
                spes: 1,
                volume: 64 << 10,
                elem: 4096,
                list: false,
                sync: SyncPolicy::AfterAll,
                params: 0,
            },
            Placement::identity(),
            Arc::clone(&plan),
        );
        let report = system.try_run(&Placement::identity(), &plan).unwrap();
        (spec.key, report)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        let (key, report) = sample();
        assert!(cache.load(&key).is_none(), "cold cache is empty");
        cache.store(&key, &report);
        let loaded = cache.load(&key).expect("stored entry loads");
        assert_eq!(loaded, report);
        assert_eq!(
            loaded.aggregate_gbps.to_bits(),
            report.aggregate_gbps.to_bits()
        );
        assert_eq!(
            cache.stats(),
            DiskCacheStats {
                loaded: 1,
                stored: 1,
                discarded: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupted_entries_are_discarded() {
        let dir = tmp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let (key, report) = sample();
        cache.store(&key, &report);
        let path = cache.entry_path(&key);

        // Truncation: half an entry is not an entry.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none());
        assert!(!path.exists(), "corrupt entry is removed");

        // Bit flip in a numeric field: parses, but the checksum refutes it.
        cache.store(&key, &report);
        let text = fs::read_to_string(&path).unwrap();
        let pos = text.find("\"cycles\":").unwrap() + "\"cycles\":".len();
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        fs::write(&path, bytes).unwrap();
        assert!(cache.load(&key).is_none());

        // Tampered checksum field itself.
        cache.store(&key, &report);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"checksum\":\"", "\"checksum\":\"f")).unwrap();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache.stats().discarded, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_report_round_trips_bit_identically() {
        let (key, report) = sample();
        let text = report_to_json(&report);
        let parsed = report_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(
            parsed.aggregate_gbps.to_bits(),
            report.aggregate_gbps.to_bits()
        );
        // The fingerprint is stable across calls and key clones.
        assert_eq!(key_fingerprint(&key), key_fingerprint(&key.clone()));
    }

    #[test]
    fn dir_stats_census_tracks_entries_and_temp_files() {
        let dir = tmp_dir("census");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.dir_stats(), DiskDirStats::default());
        let (key, report) = sample();
        cache.store(&key, &report);
        let stats = cache.dir_stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert_eq!(stats.temp_files, 0);
        // A stray temp file from a killed writer is counted, not hidden.
        fs::write(dir.join(".tmp-999-0"), "half an entry").unwrap();
        assert_eq!(cache.dir_stats().temp_files, 1);
        assert_eq!(cache.dir_stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_for_a_different_key_are_ignored() {
        let dir = tmp_dir("stale");
        let cache = DiskCache::open(&dir).unwrap();
        let (key, report) = sample();
        cache.store(&key, &report);

        // Simulate a stale config fingerprint: the same bytes parked at
        // another key's path must not satisfy that key.
        let mut other = key.clone();
        other.config ^= 0xdead_beef;
        fs::copy(cache.entry_path(&key), cache.entry_path(&other)).unwrap();
        assert!(cache.load(&other).is_none(), "key mismatch is discarded");
        assert_eq!(cache.stats().discarded, 1);
        // The honest entry is untouched.
        assert_eq!(cache.load(&key).unwrap(), report);
        let _ = fs::remove_dir_all(&dir);
    }
}
