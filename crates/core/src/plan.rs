//! Per-SPE DMA programs: what each SPE transfers, and how it synchronizes.

use std::error::Error;
use std::fmt;

use cellsim_mem::RegionId;
use cellsim_mfc::{
    DmaCommand, DmaError, DmaKind, DmaListCommand, EffectiveAddr, ListElement, LsAddr, TagId,
    LOCAL_STORE_BYTES, MAX_LIST_ELEMENTS,
};

use crate::SPE_COUNT;

/// The Local Store window each script cycles its DMA buffers through.
/// Half the LS: the other half is left to "code" and to incoming traffic
/// from partners, mirroring how the paper's micro-benchmarks are laid out.
pub const LS_WINDOW: u32 = LOCAL_STORE_BYTES / 2;

/// When the SPU waits for its outstanding DMAs (the paper's Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncPolicy {
    /// Enqueue everything, wait once at the end — the paper's rule for
    /// maximum bandwidth.
    AfterAll,
    /// Wait for the tag group to quiesce after every `n` commands;
    /// `Every(1)` is the worst case the paper plots.
    Every(u32),
}

/// One queued unit of work: a DMA-elem command or a DMA-list command.
#[derive(Debug, Clone)]
pub enum Planned {
    /// A single-chunk command.
    Elem(DmaCommand),
    /// A list command.
    List(DmaListCommand),
}

impl Planned {
    /// Payload bytes this unit will move.
    pub fn bytes(&self) -> u64 {
        match self {
            Planned::Elem(c) => u64::from(c.bytes()),
            Planned::List(l) => l.total_bytes(),
        }
    }
}

/// The DMA program of one logical SPE.
#[derive(Debug, Clone, Default)]
pub struct SpeScript {
    pub(crate) commands: Vec<Planned>,
    pub(crate) sync: Option<SyncPolicy>,
}

impl SpeScript {
    /// Queued commands, in program order.
    pub fn commands(&self) -> &[Planned] {
        &self.commands
    }

    /// The script's synchronization policy ([`SyncPolicy::AfterAll`] when
    /// unset).
    pub fn sync(&self) -> SyncPolicy {
        self.sync.unwrap_or(SyncPolicy::AfterAll)
    }

    /// Total payload bytes across the whole script.
    pub fn total_bytes(&self) -> u64 {
        self.commands.iter().map(Planned::bytes).sum()
    }

    /// Whether this SPE has no work.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

/// A full-machine transfer plan: one script per logical SPE.
#[derive(Debug, Clone, Default)]
pub struct TransferPlan {
    scripts: Vec<SpeScript>,
}

impl TransferPlan {
    /// Starts building a plan.
    pub fn builder() -> TransferPlanBuilder {
        TransferPlanBuilder::new()
    }

    /// Scripts indexed by logical SPE (always [`SPE_COUNT`] entries).
    pub fn scripts(&self) -> &[SpeScript] {
        &self.scripts
    }

    /// Logical SPEs that have work.
    pub fn active_spes(&self) -> impl Iterator<Item = usize> + '_ {
        self.scripts
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
    }

    /// Total payload bytes across all SPEs.
    pub fn total_bytes(&self) -> u64 {
        self.scripts.iter().map(SpeScript::total_bytes).sum()
    }

    /// The main-memory region logical SPE `spe` streams *from* (GET).
    pub fn get_region(spe: usize) -> RegionId {
        RegionId(spe as u32)
    }

    /// The main-memory region logical SPE `spe` streams *to* (PUT). Lands
    /// on the same bank parity as [`TransferPlan::get_region`] under the
    /// default round-robin NUMA policy.
    pub fn put_region(spe: usize) -> RegionId {
        RegionId((2 * SPE_COUNT + spe) as u32)
    }

    /// The destination region of a GET+PUT copy: a different region on
    /// the same bank as [`TransferPlan::get_region`] (the benchmark
    /// allocates each SPE's source and destination on its own NUMA node).
    /// Copy thus loads each bank with reads *and* writes, and the
    /// aggregate across SPEs approaches the 23.8 GB/s two-bank peak the
    /// paper reports.
    pub fn copy_dst_region(spe: usize) -> RegionId {
        RegionId((SPE_COUNT + spe) as u32)
    }
}

/// Why a plan could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// Logical SPE index out of 0..8.
    BadSpe(usize),
    /// A stream's partner equals the streaming SPE.
    SelfPartner(usize),
    /// `total_bytes` is not a multiple of `elem_bytes`.
    NotElemMultiple {
        /// Requested total.
        total: u64,
        /// Requested element size.
        elem: u32,
    },
    /// The underlying DMA command was invalid.
    Dma(DmaError),
    /// The plan has no work at all.
    EmptyPlan,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadSpe(s) => write!(f, "logical SPE {s} out of range 0..8"),
            PlanError::SelfPartner(s) => write!(f, "SPE {s} cannot stream to itself"),
            PlanError::NotElemMultiple { total, elem } => {
                write!(f, "total {total} is not a multiple of element size {elem}")
            }
            PlanError::Dma(e) => write!(f, "invalid DMA command: {e}"),
            PlanError::EmptyPlan => write!(f, "plan has no work"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Dma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DmaError> for PlanError {
    fn from(e: DmaError) -> Self {
        PlanError::Dma(e)
    }
}

/// Builder for [`TransferPlan`]; methods chain and the first error is
/// reported by [`TransferPlanBuilder::build`].
#[derive(Debug, Clone)]
pub struct TransferPlanBuilder {
    scripts: Vec<SpeScript>,
    err: Option<PlanError>,
}

impl Default for TransferPlanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TransferPlanBuilder {
    /// An empty builder.
    pub fn new() -> TransferPlanBuilder {
        TransferPlanBuilder {
            scripts: vec![SpeScript::default(); SPE_COUNT],
            err: None,
        }
    }

    /// Finishes the plan.
    ///
    /// # Errors
    ///
    /// Returns the first error any chained method produced, or
    /// [`PlanError::EmptyPlan`] if nothing was added.
    pub fn build(self) -> Result<TransferPlan, PlanError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if self.scripts.iter().all(SpeScript::is_empty) {
            return Err(PlanError::EmptyPlan);
        }
        Ok(TransferPlan {
            scripts: self.scripts,
        })
    }

    /// Sets the synchronization policy of `spe`'s script.
    pub fn sync_policy(mut self, spe: usize, sync: SyncPolicy) -> Self {
        if self.err.is_none() {
            if spe >= SPE_COUNT {
                self.err = Some(PlanError::BadSpe(spe));
            } else {
                self.scripts[spe].sync = Some(sync);
            }
        }
        self
    }

    /// SPE `spe` GETs `total_bytes` from its main-memory region in
    /// `elem_bytes` DMA-elem chunks.
    pub fn get_from_memory(
        self,
        spe: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.memory_stream(spe, DmaKind::Get, total_bytes, elem_bytes, sync, false)
    }

    /// SPE `spe` PUTs `total_bytes` to its main-memory region in
    /// `elem_bytes` DMA-elem chunks.
    pub fn put_to_memory(
        self,
        spe: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.memory_stream(spe, DmaKind::Put, total_bytes, elem_bytes, sync, false)
    }

    /// Memory→LS→memory copy: alternating GET (from the SPE's get region)
    /// and PUT (to its put region) — the paper's GET+PUT experiment.
    pub fn copy_memory(
        mut self,
        spe: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = self.check_stream(spe, total_bytes, elem_bytes) {
            self.err = Some(e);
            return self;
        }
        let count = total_bytes / u64::from(elem_bytes);
        for j in 0..count {
            let ls = ls_slot(j, elem_bytes);
            let ea_off = j * u64::from(elem_bytes);
            // Each LS slot gets its own tag chain, and every command in
            // the chain is fenced: the put waits for the get that filled
            // the slot, and a later get waits for the put that drained it
            // — real double-buffered copy code (mfc_getf/mfc_putf).
            let chain = chain_tag(j);
            for (kind, region) in [
                (DmaKind::Get, TransferPlan::get_region(spe)),
                (DmaKind::Put, TransferPlan::copy_dst_region(spe)),
            ] {
                let ea = EffectiveAddr::Memory {
                    region,
                    offset: ea_off,
                };
                match DmaCommand::new(kind, ls, ea, elem_bytes, chain) {
                    Ok(cmd) => self.scripts[spe]
                        .commands
                        .push(Planned::Elem(cmd.with_fence())),
                    Err(e) => {
                        self.err = Some(e.into());
                        return self;
                    }
                }
            }
        }
        self.scripts[spe].sync.get_or_insert(sync);
        self
    }

    /// SPE `spe` GETs from `partner`'s Local Store in DMA-elem chunks.
    pub fn get_from_spe(
        self,
        spe: usize,
        partner: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.ls_stream(
            spe,
            partner,
            DmaKind::Get,
            total_bytes,
            elem_bytes,
            sync,
            false,
        )
    }

    /// SPE `spe` PUTs into `partner`'s Local Store in DMA-elem chunks.
    pub fn put_to_spe(
        self,
        spe: usize,
        partner: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.ls_stream(
            spe,
            partner,
            DmaKind::Put,
            total_bytes,
            elem_bytes,
            sync,
            false,
        )
    }

    /// Simultaneous read and write with `partner` (alternating GET and PUT
    /// of `total_bytes` each) — the paper's SPE↔SPE experiments.
    pub fn exchange_with(
        mut self,
        spe: usize,
        partner: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = self.check_pair(spe, partner, total_bytes, elem_bytes) {
            self.err = Some(e);
            return self;
        }
        let count = total_bytes / u64::from(elem_bytes);
        for j in 0..count {
            let ls = ls_slot(j, elem_bytes);
            for kind in [DmaKind::Get, DmaKind::Put] {
                let ea = partner_ea(partner, j, elem_bytes, kind);
                match DmaCommand::new(kind, ls, ea, elem_bytes, tag()) {
                    Ok(cmd) => self.scripts[spe].commands.push(Planned::Elem(cmd)),
                    Err(e) => {
                        self.err = Some(e.into());
                        return self;
                    }
                }
            }
        }
        self.scripts[spe].sync.get_or_insert(sync);
        self
    }

    /// DMA-list variant of [`TransferPlanBuilder::get_from_memory`].
    pub fn get_from_memory_list(
        self,
        spe: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.memory_stream(spe, DmaKind::Get, total_bytes, elem_bytes, sync, true)
    }

    /// DMA-list variant of [`TransferPlanBuilder::put_to_memory`].
    pub fn put_to_memory_list(
        self,
        spe: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        self.memory_stream(spe, DmaKind::Put, total_bytes, elem_bytes, sync, true)
    }

    /// DMA-list variant of [`TransferPlanBuilder::exchange_with`]:
    /// alternating GETL and PUTL list commands.
    pub fn exchange_with_list(
        mut self,
        spe: usize,
        partner: usize,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = self.check_pair(spe, partner, total_bytes, elem_bytes) {
            self.err = Some(e);
            return self;
        }
        let per_list = elems_per_list(elem_bytes);
        let total_elems = total_bytes / u64::from(elem_bytes);
        let mut done = 0u64;
        while done < total_elems {
            let n = per_list.min((total_elems - done) as usize);
            for kind in [DmaKind::Get, DmaKind::Put] {
                let base = partner_ea(partner, done, elem_bytes, kind);
                match DmaListCommand::contiguous(kind, LsAddr(0), base, elem_bytes, n, tag()) {
                    Ok(cmd) => self.scripts[spe].commands.push(Planned::List(cmd)),
                    Err(e) => {
                        self.err = Some(e.into());
                        return self;
                    }
                }
            }
            done += n as u64;
        }
        self.scripts[spe].sync.get_or_insert(sync);
        self
    }

    fn memory_stream(
        mut self,
        spe: usize,
        kind: DmaKind,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
        list: bool,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = self.check_stream(spe, total_bytes, elem_bytes) {
            self.err = Some(e);
            return self;
        }
        let region = match kind {
            DmaKind::Get => TransferPlan::get_region(spe),
            DmaKind::Put => TransferPlan::put_region(spe),
        };
        let result = if list {
            push_list_stream(
                &mut self.scripts[spe],
                kind,
                region_ea(region, 0),
                total_bytes,
                elem_bytes,
            )
        } else {
            push_elem_stream(
                &mut self.scripts[spe],
                kind,
                region_ea(region, 0),
                total_bytes,
                elem_bytes,
            )
        };
        if let Err(e) = result {
            self.err = Some(e);
            return self;
        }
        self.scripts[spe].sync.get_or_insert(sync);
        self
    }

    #[allow(clippy::too_many_arguments)]
    fn ls_stream(
        mut self,
        spe: usize,
        partner: usize,
        kind: DmaKind,
        total_bytes: u64,
        elem_bytes: u32,
        sync: SyncPolicy,
        list: bool,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = self.check_pair(spe, partner, total_bytes, elem_bytes) {
            self.err = Some(e);
            return self;
        }
        let base = partner_ea(partner, 0, elem_bytes, kind);
        let result = if list {
            push_list_stream(&mut self.scripts[spe], kind, base, total_bytes, elem_bytes)
        } else {
            push_elem_stream(&mut self.scripts[spe], kind, base, total_bytes, elem_bytes)
        };
        if let Err(e) = result {
            self.err = Some(e);
            return self;
        }
        self.scripts[spe].sync.get_or_insert(sync);
        self
    }

    /// Queues one GET of an arbitrary block (any valid DMA size ≤
    /// region bounds), split into ≤16 KB commands on a rotating Local
    /// Store window. The building block for task runtimes.
    pub fn get_block(self, spe: usize, region: RegionId, offset: u64, bytes: u64) -> Self {
        self.block(spe, DmaKind::Get, region, offset, bytes)
    }

    /// Queues one PUT of an arbitrary block (see
    /// [`TransferPlanBuilder::get_block`]).
    pub fn put_block(self, spe: usize, region: RegionId, offset: u64, bytes: u64) -> Self {
        self.block(spe, DmaKind::Put, region, offset, bytes)
    }

    fn block(
        mut self,
        spe: usize,
        kind: DmaKind,
        region: RegionId,
        offset: u64,
        bytes: u64,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if spe >= SPE_COUNT {
            self.err = Some(PlanError::BadSpe(spe));
            return self;
        }
        let mut done = 0u64;
        while done < bytes {
            let chunk = (bytes - done).min(u64::from(cellsim_mfc::MAX_DMA_BYTES)) as u32;
            let ls = ls_slot((offset + done) / 16, 16);
            let ea = EffectiveAddr::Memory {
                region,
                offset: offset + done,
            };
            match DmaCommand::new(kind, ls, ea, chunk, tag()) {
                Ok(cmd) => self.scripts[spe].commands.push(Planned::Elem(cmd)),
                Err(e) => {
                    self.err = Some(e.into());
                    return self;
                }
            }
            done += u64::from(chunk);
        }
        self.scripts[spe].sync.get_or_insert(SyncPolicy::AfterAll);
        self
    }

    /// SPE `spe` GETs one `bytes`-sized element at each scattered `offsets`
    /// entry of `region` — the building block for application-shaped
    /// address streams (random gathers, indexed reads). Local Store slots
    /// rotate through [`LS_WINDOW`] on a 16-byte-aligned stride, so
    /// sub-quadword elements require 16-byte-aligned effective offsets
    /// (the MFC's LS/EA low-nibble agreement rule); violations surface as
    /// [`PlanError::Dma`] at [`TransferPlanBuilder::build`], never panics.
    pub fn get_elems_at(self, spe: usize, region: RegionId, offsets: &[u64], bytes: u32) -> Self {
        self.elems_at(spe, DmaKind::Get, region, offsets, bytes)
    }

    /// Scatter counterpart of [`TransferPlanBuilder::get_elems_at`]: one
    /// PUT per offset.
    pub fn put_elems_at(self, spe: usize, region: RegionId, offsets: &[u64], bytes: u32) -> Self {
        self.elems_at(spe, DmaKind::Put, region, offsets, bytes)
    }

    /// Read-modify-write cycle at each scattered offset: a fenced GET then
    /// a fenced PUT of the same element on a rotating tag chain, exactly
    /// the `mfc_getf`/`mfc_putf` discipline real GUPS update loops use so
    /// the store cannot overtake its load.
    pub fn update_elems_at(
        mut self,
        spe: usize,
        region: RegionId,
        offsets: &[u64],
        bytes: u32,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if spe >= SPE_COUNT {
            self.err = Some(PlanError::BadSpe(spe));
            return self;
        }
        let stride = u64::from(bytes.max(16));
        for (j, &off) in offsets.iter().enumerate() {
            let ls = LsAddr(((j as u64 * stride) % u64::from(LS_WINDOW)) as u32);
            let chain = chain_tag(j as u64);
            let ea = EffectiveAddr::Memory {
                region,
                offset: off,
            };
            for kind in [DmaKind::Get, DmaKind::Put] {
                match DmaCommand::new(kind, ls, ea, bytes, chain) {
                    Ok(cmd) => self.scripts[spe]
                        .commands
                        .push(Planned::Elem(cmd.with_fence())),
                    Err(e) => {
                        self.err = Some(e.into());
                        return self;
                    }
                }
            }
        }
        if !offsets.is_empty() {
            self.scripts[spe].sync.get_or_insert(SyncPolicy::AfterAll);
        }
        self
    }

    /// SPE `spe` GETLs the given (possibly strided or indexed) `elements`
    /// relative to the start of `region`, batched into hardware-legal list
    /// commands (≤ [`MAX_LIST_ELEMENTS`][cellsim_mfc::MAX_LIST_ELEMENTS]
    /// entries, payload ≤ [`LS_WINDOW`] each).
    pub fn get_list_at(self, spe: usize, region: RegionId, elements: &[ListElement]) -> Self {
        self.list_at(spe, region, elements, ListOp::Single(DmaKind::Get))
    }

    /// Scatter counterpart of [`TransferPlanBuilder::get_list_at`].
    pub fn put_list_at(self, spe: usize, region: RegionId, elements: &[ListElement]) -> Self {
        self.list_at(spe, region, elements, ListOp::Single(DmaKind::Put))
    }

    /// Gather/scatter cycle over an element list: each batch issues a GETL
    /// followed by a fenced PUTL of the same elements on the batch's tag
    /// chain — the indexed pair-list update shape.
    pub fn update_list_at(self, spe: usize, region: RegionId, elements: &[ListElement]) -> Self {
        self.list_at(spe, region, elements, ListOp::Update)
    }

    fn elems_at(
        mut self,
        spe: usize,
        kind: DmaKind,
        region: RegionId,
        offsets: &[u64],
        bytes: u32,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if spe >= SPE_COUNT {
            self.err = Some(PlanError::BadSpe(spe));
            return self;
        }
        let stride = u64::from(bytes.max(16));
        for (j, &off) in offsets.iter().enumerate() {
            let ls = LsAddr(((j as u64 * stride) % u64::from(LS_WINDOW)) as u32);
            let ea = EffectiveAddr::Memory {
                region,
                offset: off,
            };
            match DmaCommand::new(kind, ls, ea, bytes, tag()) {
                Ok(cmd) => self.scripts[spe].commands.push(Planned::Elem(cmd)),
                Err(e) => {
                    self.err = Some(e.into());
                    return self;
                }
            }
        }
        if !offsets.is_empty() {
            self.scripts[spe].sync.get_or_insert(SyncPolicy::AfterAll);
        }
        self
    }

    fn list_at(
        mut self,
        spe: usize,
        region: RegionId,
        elements: &[ListElement],
        op: ListOp,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        if spe >= SPE_COUNT {
            self.err = Some(PlanError::BadSpe(spe));
            return self;
        }
        let base = region_ea(region, 0);
        let mut start = 0usize;
        let mut batch_idx = 0u64;
        while start < elements.len() {
            let mut end = start;
            let mut payload = 0u64;
            while end < elements.len()
                && end - start < MAX_LIST_ELEMENTS
                && payload + u64::from(elements[end].bytes) <= u64::from(LS_WINDOW)
            {
                payload += u64::from(elements[end].bytes);
                end += 1;
            }
            // A single element larger than the window: pass it through so
            // the MFC validator reports the real error.
            if end == start {
                end = start + 1;
            }
            let batch = elements[start..end].to_vec();
            let result = match op {
                ListOp::Single(kind) => DmaListCommand::new(kind, LsAddr(0), base, batch, tag())
                    .map(|cmd| {
                        self.scripts[spe].commands.push(Planned::List(cmd));
                    }),
                ListOp::Update => {
                    let chain = chain_tag(batch_idx);
                    DmaListCommand::new(DmaKind::Get, LsAddr(0), base, batch.clone(), chain)
                        .and_then(|get| {
                            let put =
                                DmaListCommand::new(DmaKind::Put, LsAddr(0), base, batch, chain)?;
                            self.scripts[spe].commands.push(Planned::List(get));
                            self.scripts[spe]
                                .commands
                                .push(Planned::List(put.with_fence()));
                            Ok(())
                        })
                }
            };
            if let Err(e) = result {
                self.err = Some(e.into());
                return self;
            }
            batch_idx += 1;
            start = end;
        }
        if !elements.is_empty() {
            self.scripts[spe].sync.get_or_insert(SyncPolicy::AfterAll);
        }
        self
    }

    fn check_stream(&self, spe: usize, total: u64, elem: u32) -> Result<(), PlanError> {
        if spe >= SPE_COUNT {
            return Err(PlanError::BadSpe(spe));
        }
        if elem == 0 || !total.is_multiple_of(u64::from(elem)) {
            return Err(PlanError::NotElemMultiple { total, elem });
        }
        Ok(())
    }

    fn check_pair(
        &self,
        spe: usize,
        partner: usize,
        total: u64,
        elem: u32,
    ) -> Result<(), PlanError> {
        self.check_stream(spe, total, elem)?;
        if partner >= SPE_COUNT {
            return Err(PlanError::BadSpe(partner));
        }
        if partner == spe {
            return Err(PlanError::SelfPartner(spe));
        }
        Ok(())
    }
}

/// How a batched element list is issued.
#[derive(Debug, Clone, Copy)]
enum ListOp {
    /// One list command per batch in the given direction.
    Single(DmaKind),
    /// GETL then fenced PUTL per batch (gather/scatter update).
    Update,
}

fn tag() -> TagId {
    TagId::new(0).expect("tag 0 valid")
}

/// One of 32 rotating tag chains used by fenced copy pipelines.
fn chain_tag(j: u64) -> TagId {
    TagId::new((j % 32) as u8).expect("mod 32 is a valid tag")
}

/// Rotating Local Store slot for the `j`-th element of a stream.
fn ls_slot(j: u64, elem_bytes: u32) -> LsAddr {
    LsAddr(((j * u64::from(elem_bytes)) % u64::from(LS_WINDOW)) as u32)
}

/// EA inside the partner's Local Store for element `j`. GETs read from the
/// partner's outgoing window (first half); PUTs land in its incoming
/// window (second half) so the two directions never alias.
fn partner_ea(partner: usize, j: u64, elem_bytes: u32, kind: DmaKind) -> EffectiveAddr {
    let base = match kind {
        DmaKind::Get => 0,
        DmaKind::Put => LS_WINDOW,
    };
    EffectiveAddr::LocalStore {
        spe: partner as u8,
        offset: base + ((j * u64::from(elem_bytes)) % u64::from(LS_WINDOW)) as u32,
    }
}

fn region_ea(region: RegionId, offset: u64) -> EffectiveAddr {
    EffectiveAddr::Memory { region, offset }
}

fn push_elem_stream(
    script: &mut SpeScript,
    kind: DmaKind,
    base: EffectiveAddr,
    total_bytes: u64,
    elem_bytes: u32,
) -> Result<(), PlanError> {
    let count = total_bytes / u64::from(elem_bytes);
    for j in 0..count {
        let ls = ls_slot(j, elem_bytes);
        let ea = match base {
            EffectiveAddr::Memory { region, .. } => region_ea(region, j * u64::from(elem_bytes)),
            // `base`'s offset is the window start (0 or LS_WINDOW).
            EffectiveAddr::LocalStore { spe, offset } => EffectiveAddr::LocalStore {
                spe,
                offset: offset + ((j * u64::from(elem_bytes)) % u64::from(LS_WINDOW)) as u32,
            },
        };
        let cmd = DmaCommand::new(kind, ls, ea, elem_bytes, tag())?;
        script.commands.push(Planned::Elem(cmd));
    }
    Ok(())
}

/// How many elements fit one list command: bounded by the hardware's 2048
/// and by the Local Store window the payload packs into.
fn elems_per_list(elem_bytes: u32) -> usize {
    let by_ls = (LS_WINDOW / elem_bytes).max(1) as usize;
    by_ls.min(cellsim_mfc::MAX_LIST_ELEMENTS)
}

fn push_list_stream(
    script: &mut SpeScript,
    kind: DmaKind,
    base: EffectiveAddr,
    total_bytes: u64,
    elem_bytes: u32,
) -> Result<(), PlanError> {
    let per_list = elems_per_list(elem_bytes);
    let total_elems = total_bytes / u64::from(elem_bytes);
    let mut done = 0u64;
    while done < total_elems {
        let n = per_list.min((total_elems - done) as usize);
        let ea = match base {
            EffectiveAddr::Memory { region, .. } => region_ea(region, done * u64::from(elem_bytes)),
            ls @ EffectiveAddr::LocalStore { .. } => ls,
        };
        let cmd = DmaListCommand::contiguous(kind, LsAddr(0), ea, elem_bytes, n, tag())?;
        script.commands.push(Planned::List(cmd));
        done += n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_get_builds_expected_commands() {
        let plan = TransferPlan::builder()
            .get_from_memory(0, 4096, 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let script = &plan.scripts()[0];
        assert_eq!(script.commands().len(), 4);
        assert_eq!(script.total_bytes(), 4096);
        assert_eq!(plan.total_bytes(), 4096);
        assert_eq!(plan.active_spes().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn copy_alternates_get_and_put() {
        let plan = TransferPlan::builder()
            .copy_memory(2, 2048, 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let cmds = plan.scripts()[2].commands();
        assert_eq!(cmds.len(), 4);
        let kinds: Vec<_> = cmds
            .iter()
            .map(|p| match p {
                Planned::Elem(c) => c.kind(),
                Planned::List(_) => panic!("elem expected"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![DmaKind::Get, DmaKind::Put, DmaKind::Get, DmaKind::Put]
        );
        // Copy moves 2x the buffer.
        assert_eq!(plan.total_bytes(), 4096);
    }

    #[test]
    fn exchange_uses_disjoint_partner_windows() {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, 4096, 2048, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        for p in plan.scripts()[0].commands() {
            let Planned::Elem(c) = p else { panic!() };
            let EffectiveAddr::LocalStore { spe, offset } = c.ea() else {
                panic!("LS target expected")
            };
            assert_eq!(spe, 1);
            match c.kind() {
                DmaKind::Get => assert!(offset < LS_WINDOW),
                DmaKind::Put => assert!(offset >= LS_WINDOW),
            }
        }
    }

    #[test]
    fn list_streams_chunk_within_hardware_limits() {
        let plan = TransferPlan::builder()
            .get_from_memory_list(0, 1 << 20, 128, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        for p in plan.scripts()[0].commands() {
            let Planned::List(l) = p else {
                panic!("list expected")
            };
            assert!(l.elements().len() <= cellsim_mfc::MAX_LIST_ELEMENTS);
            assert!(l.total_bytes() <= u64::from(LS_WINDOW));
        }
        assert_eq!(plan.total_bytes(), 1 << 20);
    }

    #[test]
    fn ls_slots_wrap_and_stay_aligned() {
        // Enough elements to wrap the 128 KiB window.
        let plan = TransferPlan::builder()
            .get_from_memory(0, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        for p in plan.scripts()[0].commands() {
            let Planned::Elem(c) = p else { panic!() };
            assert!(c.ls().0 + c.bytes() <= LOCAL_STORE_BYTES);
            assert_eq!(c.ls().0 % 16, 0);
        }
    }

    #[test]
    fn errors_surface_at_build() {
        assert_eq!(
            TransferPlan::builder().build().unwrap_err(),
            PlanError::EmptyPlan
        );
        assert_eq!(
            TransferPlan::builder()
                .get_from_memory(9, 1024, 128, SyncPolicy::AfterAll)
                .build()
                .unwrap_err(),
            PlanError::BadSpe(9)
        );
        assert_eq!(
            TransferPlan::builder()
                .get_from_memory(0, 1000, 128, SyncPolicy::AfterAll)
                .build()
                .unwrap_err(),
            PlanError::NotElemMultiple {
                total: 1000,
                elem: 128
            }
        );
        assert_eq!(
            TransferPlan::builder()
                .exchange_with(3, 3, 1024, 128, SyncPolicy::AfterAll)
                .build()
                .unwrap_err(),
            PlanError::SelfPartner(3)
        );
        // Invalid DMA size (not 1/2/4/8 or a multiple of 16) propagates
        // from the MFC validator.
        assert!(matches!(
            TransferPlan::builder()
                .get_from_memory(0, 72, 72, SyncPolicy::AfterAll)
                .build()
                .unwrap_err(),
            PlanError::Dma(DmaError::InvalidSize(72))
        ));
    }

    #[test]
    fn sync_policy_recorded_per_script() {
        let plan = TransferPlan::builder()
            .get_from_memory(0, 1024, 128, SyncPolicy::Every(2))
            .get_from_memory(1, 1024, 128, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        assert_eq!(plan.scripts()[0].sync(), SyncPolicy::Every(2));
        assert_eq!(plan.scripts()[1].sync(), SyncPolicy::AfterAll);
    }

    #[test]
    fn scattered_elems_rotate_aligned_slots() {
        let offsets: Vec<u64> = (0..64).map(|i| i * 4096).collect();
        let plan = TransferPlan::builder()
            .get_elems_at(0, RegionId(0), &offsets, 8)
            .build()
            .unwrap();
        let cmds = plan.scripts()[0].commands();
        assert_eq!(cmds.len(), 64);
        for (j, p) in cmds.iter().enumerate() {
            let Planned::Elem(c) = p else { panic!() };
            // 8-byte elements still advance on a 16-byte LS stride so the
            // low nibble agrees with the 16-aligned effective addresses.
            assert_eq!(c.ls().0, (j as u32 * 16) % LS_WINDOW);
            assert_eq!(c.bytes(), 8);
        }
        assert_eq!(plan.total_bytes(), 64 * 8);
    }

    #[test]
    fn update_elems_fence_get_before_put() {
        let offsets = [0u64, 1 << 16, 1 << 20];
        let plan = TransferPlan::builder()
            .update_elems_at(1, RegionId(1), &offsets, 128)
            .build()
            .unwrap();
        let cmds = plan.scripts()[1].commands();
        assert_eq!(cmds.len(), 6);
        for (j, pair) in cmds.chunks(2).enumerate() {
            let (Planned::Elem(get), Planned::Elem(put)) = (&pair[0], &pair[1]) else {
                panic!("elem pair expected")
            };
            assert_eq!(get.kind(), DmaKind::Get);
            assert_eq!(put.kind(), DmaKind::Put);
            assert!(get.fence() && put.fence());
            assert_eq!(get.ea(), put.ea());
            assert_eq!(get.tag(), chain_tag(j as u64));
        }
    }

    #[test]
    fn indexed_lists_batch_within_hardware_limits() {
        let elements: Vec<ListElement> = (0..5000u64)
            .map(|i| ListElement {
                ea_offset: i * 256,
                bytes: 64,
            })
            .collect();
        let plan = TransferPlan::builder()
            .get_list_at(0, RegionId(0), &elements)
            .build()
            .unwrap();
        let mut total_elems = 0usize;
        for p in plan.scripts()[0].commands() {
            let Planned::List(l) = p else {
                panic!("list expected")
            };
            assert!(l.elements().len() <= MAX_LIST_ELEMENTS);
            assert!(l.total_bytes() <= u64::from(LS_WINDOW));
            total_elems += l.elements().len();
        }
        assert_eq!(total_elems, 5000);
        assert_eq!(plan.total_bytes(), 5000 * 64);
    }

    #[test]
    fn update_lists_pair_get_with_fenced_put() {
        let elements: Vec<ListElement> = (0..10u64)
            .map(|i| ListElement {
                ea_offset: i * 1024,
                bytes: 128,
            })
            .collect();
        let plan = TransferPlan::builder()
            .update_list_at(2, RegionId(2), &elements)
            .build()
            .unwrap();
        let cmds = plan.scripts()[2].commands();
        assert_eq!(cmds.len(), 2);
        let (Planned::List(get), Planned::List(put)) = (&cmds[0], &cmds[1]) else {
            panic!("list pair expected")
        };
        assert_eq!(get.kind(), DmaKind::Get);
        assert_eq!(put.kind(), DmaKind::Put);
        assert!(!get.fence());
        assert!(put.fence());
        assert_eq!(get.elements(), put.elements());
    }

    #[test]
    fn scattered_errors_surface_not_panic() {
        // Misaligned sub-quadword offset: LS slot is 16-aligned, EA is not.
        assert!(matches!(
            TransferPlan::builder()
                .get_elems_at(0, RegionId(0), &[8], 8)
                .build()
                .unwrap_err(),
            PlanError::Dma(_)
        ));
        assert_eq!(
            TransferPlan::builder()
                .get_elems_at(9, RegionId(0), &[0], 16)
                .build()
                .unwrap_err(),
            PlanError::BadSpe(9)
        );
        assert_eq!(
            TransferPlan::builder()
                .update_list_at(
                    8,
                    RegionId(0),
                    &[ListElement {
                        ea_offset: 0,
                        bytes: 16
                    }]
                )
                .build()
                .unwrap_err(),
            PlanError::BadSpe(8)
        );
        // Empty offset slices queue nothing: an otherwise empty plan still
        // reports EmptyPlan.
        assert_eq!(
            TransferPlan::builder()
                .get_elems_at(0, RegionId(0), &[], 16)
                .build()
                .unwrap_err(),
            PlanError::EmptyPlan
        );
    }

    #[test]
    fn regions_are_disjoint_per_spe_and_direction() {
        let mut seen = std::collections::HashSet::new();
        for spe in 0..SPE_COUNT {
            assert!(seen.insert(TransferPlan::get_region(spe)));
            assert!(seen.insert(TransferPlan::put_region(spe)));
        }
        for spe in 0..SPE_COUNT {
            // Copy destinations may alias other SPEs' copy destinations'
            // parity but never a get/put region of the same SPE.
            assert_ne!(
                TransferPlan::copy_dst_region(spe),
                TransferPlan::get_region(spe)
            );
        }
    }
}
