//! Always-on fabric metrics: where did every cycle go?
//!
//! Every fabric run accumulates pure counters inline — per-SPE stall
//! breakdowns, per-ring traffic, per-bank occupancy, and the MFC
//! outstanding-slot histogram — and carries them in
//! [`FabricReport::metrics`](crate::FabricReport). Unlike a
//! [`FabricTrace`](crate::FabricTrace), which records individual events
//! into a bounded buffer and can overflow at paper scale, metrics cost
//! O(1) per event, never truncate, and are part of the deterministic
//! report: bit-identical for any `--jobs` count and cached alongside the
//! bandwidth numbers.
//!
//! The counters are chosen to *explain* the paper's results the way the
//! paper does: the outstanding-slot histogram is the Little's-law account
//! of the single-SPE ≈10 GB/s ceiling, the stall partition separates MFC
//! saturation from sync draining (Figure 10) and write backpressure, and
//! the ring/bank tables show where contention concentrates.

use cellsim_eib::RingStats;
use cellsim_mem::{BankId, BankStats};

use crate::fabric::FabricReport;
use crate::latency::LatencyMetrics;

/// Per-SPE cycle accounting over one run.
///
/// The six cycle counters partition the run exactly: for every SPE,
/// `busy + idle + stall_* == FabricMetrics::run_cycles`. Each cycle is
/// charged to the *most blocking* condition at the time (sync wait wins
/// over a full outstanding budget, which wins over plain busy).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpeMetrics {
    /// The SPE had work and could make progress (commands decoding,
    /// packets issuing, or in flight below the outstanding budget).
    pub busy_cycles: u64,
    /// No queued commands and nothing in flight (before the SPE's script
    /// started producing work, or after it completed).
    pub idle_cycles: u64,
    /// The outstanding-packet budget was exhausted with every in-flight
    /// packet on the wire or in DRAM — the Little's-law latency limit.
    pub stall_mfc_full_cycles: u64,
    /// Blocked on a tag-group sync (the enqueue side drained the
    /// pipeline, the paper's Figure 10 mechanism).
    pub stall_sync_cycles: u64,
    /// Budget exhausted while at least one packet was queued at the EIB
    /// data arbiter waiting for a ring grant.
    pub stall_eib_cycles: u64,
    /// Budget exhausted while at least one memory PUT was refused by the
    /// bank's backlog horizon (write backpressure).
    pub stall_mem_cycles: u64,
    /// Time-weighted MFC outstanding-slot histogram: entry `k` is how
    /// many cycles exactly `k` bus packets were in flight. Entries sum to
    /// the run length.
    pub occupancy_cycles: Vec<u64>,
}

impl SpeMetrics {
    /// Total stalled cycles across all stall causes.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_mfc_full_cycles
            + self.stall_sync_cycles
            + self.stall_eib_cycles
            + self.stall_mem_cycles
    }

    /// All accounted cycles; equals the run length by construction.
    pub fn accounted_cycles(&self) -> u64 {
        self.busy_cycles + self.idle_cycles + self.stall_cycles()
    }

    fn add(&mut self, other: &SpeMetrics) {
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.stall_mfc_full_cycles += other.stall_mfc_full_cycles;
        self.stall_sync_cycles += other.stall_sync_cycles;
        self.stall_eib_cycles += other.stall_eib_cycles;
        self.stall_mem_cycles += other.stall_mem_cycles;
        if self.occupancy_cycles.len() < other.occupancy_cycles.len() {
            self.occupancy_cycles
                .resize(other.occupancy_cycles.len(), 0);
        }
        for (acc, &v) in self
            .occupancy_cycles
            .iter_mut()
            .zip(&other.occupancy_cycles)
        {
            *acc += v;
        }
    }
}

/// Fault-injection and retry activity of one run. All-zero on a healthy
/// blade (and when the installed [`FaultPlan`](crate::FaultPlan) is
/// empty), so the counters are schema-stable: always present, zero when
/// nothing was injected.
///
/// Conservation: every NACK is answered exactly once, so
/// `nacks == retries + retries_exhausted` holds for every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient bank NACKs observed by in-flight packets.
    pub nacks: u64,
    /// NACKs answered with a backoff retry.
    pub retries: u64,
    /// NACKs that found the owning command's retry budget spent.
    pub retries_exhausted: u64,
    /// Packets abandoned after exhausting their budget (their payload
    /// bytes were never credited as delivered).
    pub abandoned_packets: u64,
    /// Cycles of the run inside at least one fault window (outage,
    /// derate, throttle or MFC stall) — the union, not the sum.
    pub degraded_cycles: u64,
}

impl FaultStats {
    /// Whether any fault activity was observed or any window overlapped
    /// the run.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    fn add(&mut self, other: &FaultStats) {
        self.nacks += other.nacks;
        self.retries += other.retries;
        self.retries_exhausted += other.retries_exhausted;
        self.abandoned_packets += other.abandoned_packets;
        self.degraded_cycles += other.degraded_cycles;
    }
}

/// One bank's occupancy counters, tagged with which bank it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankMetrics {
    /// Which bank.
    pub bank: BankId,
    /// The bank's counters (accesses, bytes, busy/conflict/turnaround/
    /// refresh cycles).
    pub stats: BankStats,
}

/// The always-on counters of one fabric run.
///
/// Carried in every [`FabricReport`]; all fields are integers, so the
/// struct is `Eq` and byte-identical across job counts and cache replays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricMetrics {
    /// Run length in bus cycles (same as `FabricReport::cycles`).
    pub run_cycles: u64,
    /// Per-logical-SPE cycle accounting.
    pub per_spe: Vec<SpeMetrics>,
    /// Per-ring traffic, indexed clockwise rings first.
    pub rings: Vec<RingStats>,
    /// Per-bank occupancy.
    pub banks: Vec<BankMetrics>,
    /// Fault-injection activity (all-zero on a healthy blade).
    pub faults: FaultStats,
    /// Discrete events processed by the run's event loop — the
    /// denominator of the simulator's own events-per-second speed.
    pub events: u64,
    /// Stale `Ev::Pump` firings the fabric skipped because an earlier
    /// pump for the same SPE had superseded them.
    pub suppressed_pumps: u64,
    /// High-water mark of simultaneously live packet-slab entries; stays
    /// bounded by the machine's outstanding budget however long the run.
    pub peak_live_packets: u64,
}

/// The stall causes a run can be limited by, in reporting order.
pub const STALL_CAUSES: [&str; 4] = ["mfc-slots", "sync", "eib", "mem"];

impl FabricMetrics {
    /// This run's dominant stall cause over all SPEs, as `(name,
    /// cycles)`; `("none", 0)` when no SPE ever stalled.
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        let mut totals = [0u64; 4];
        for spe in &self.per_spe {
            totals[0] += spe.stall_mfc_full_cycles;
            totals[1] += spe.stall_sync_cycles;
            totals[2] += spe.stall_eib_cycles;
            totals[3] += spe.stall_mem_cycles;
        }
        STALL_CAUSES
            .into_iter()
            .zip(totals)
            .max_by_key(|&(_, cycles)| cycles)
            .filter(|&(_, cycles)| cycles > 0)
            .unwrap_or(("none", 0))
    }
}

/// Elementwise sum of [`FabricMetrics`] over many runs (and over the SPEs
/// within each run) — the per-figure digest the experiments surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Runs accumulated.
    pub runs: u64,
    /// Σ run cycles over all runs.
    pub run_cycles: u64,
    /// Per-SPE counters summed over all SPEs of all runs.
    pub spe: SpeMetrics,
    /// Per-ring traffic summed over all runs.
    pub rings: Vec<RingStats>,
    /// Per-bank counters summed over all runs.
    pub banks: Vec<BankMetrics>,
    /// How many runs were dominated by each stall cause, in
    /// [`STALL_CAUSES`] order — the per-run bandwidth-limiter tally that
    /// aggregate cycle shares hide (e.g. Figure 10 sums to mostly sync
    /// stalls because the eager policies drain constantly, while its
    /// lazy-sync runs are limited by outstanding-slot saturation).
    pub limiter_runs: [u64; 4],
    /// Runs in which no SPE ever stalled.
    pub unstalled_runs: u64,
    /// Fault-injection activity summed over all runs.
    pub faults: FaultStats,
    /// Σ discrete events processed over all runs.
    pub events: u64,
    /// Σ bus packets delivered over all runs. Zero when the summary was
    /// built via the metrics-only [`MetricsSummary::accumulate`] (the
    /// delivered-packet count lives on the report, not the metrics).
    pub packets: u64,
    /// Σ stale pump events suppressed over all runs.
    pub suppressed_pumps: u64,
    /// Max over all runs of the packet slab's live high-water mark.
    pub peak_live_packets: u64,
    /// Per-command latency digest merged over all runs: per-path
    /// histograms, phase attribution, dominant-phase tallies. Empty when
    /// the summary was built via the metrics-only
    /// [`MetricsSummary::accumulate`].
    pub latency: LatencyMetrics,
}

impl MetricsSummary {
    /// Folds one run's metrics into the summary.
    pub fn accumulate(&mut self, m: &FabricMetrics) {
        self.runs += 1;
        self.run_cycles += m.run_cycles;
        self.events += m.events;
        self.suppressed_pumps += m.suppressed_pumps;
        self.peak_live_packets = self.peak_live_packets.max(m.peak_live_packets);
        match STALL_CAUSES.iter().position(|&c| c == m.dominant_stall().0) {
            Some(cause) => self.limiter_runs[cause] += 1,
            None => self.unstalled_runs += 1,
        }
        self.faults.add(&m.faults);
        for spe in &m.per_spe {
            self.spe.add(spe);
        }
        if self.rings.len() < m.rings.len() {
            self.rings.resize(m.rings.len(), RingStats::default());
        }
        for (acc, r) in self.rings.iter_mut().zip(&m.rings) {
            acc.grants += r.grants;
            acc.bytes += r.bytes;
            acc.busy_cycles += r.busy_cycles;
        }
        for b in &m.banks {
            match self.banks.iter_mut().find(|acc| acc.bank == b.bank) {
                Some(acc) => {
                    acc.stats.accesses += b.stats.accesses;
                    acc.stats.bytes += b.stats.bytes;
                    acc.stats.turnaround_cycles += b.stats.turnaround_cycles;
                    acc.stats.refresh_cycles += b.stats.refresh_cycles;
                    acc.stats.busy_cycles += b.stats.busy_cycles;
                    acc.stats.conflicts += b.stats.conflicts;
                }
                None => self.banks.push(*b),
            }
        }
    }

    /// Folds one run's full report into the summary: its cycle metrics
    /// *and* its per-command latency digest.
    pub fn accumulate_report(&mut self, r: &FabricReport) {
        self.accumulate(&r.metrics);
        self.packets += r.packets;
        self.latency.merge(&r.latency);
    }

    /// Builds a summary (including the latency digest) over a set of
    /// reports.
    pub fn from_reports<'a, I>(reports: I) -> MetricsSummary
    where
        I: IntoIterator<Item = &'a FabricReport>,
    {
        let mut summary = MetricsSummary::default();
        for r in reports {
            summary.accumulate_report(r);
        }
        summary
    }

    /// Σ SPE-cycles accounted (the denominator for cycle shares): every
    /// run contributes `run_cycles` per SPE, so this is
    /// `spe.accounted_cycles()` by the conservation invariant.
    pub fn spe_cycles(&self) -> u64 {
        self.spe.accounted_cycles()
    }

    /// Mean packets in flight while any packet was in flight.
    pub fn occupancy_mean_inflight(&self) -> f64 {
        let occ = &self.spe.occupancy_cycles;
        let inflight: u64 = occ.iter().skip(1).sum();
        if inflight == 0 {
            return 0.0;
        }
        let weighted: u64 = occ.iter().enumerate().map(|(k, &c)| k as u64 * c).sum();
        weighted as f64 / inflight as f64
    }

    /// Share of in-flight time spent with *every* outstanding slot
    /// occupied — the saturation signature of the Little's-law bandwidth
    /// ceiling.
    pub fn occupancy_saturated_share(&self) -> f64 {
        let occ = &self.spe.occupancy_cycles;
        let inflight: u64 = occ.iter().skip(1).sum();
        match (occ.last(), inflight) {
            (Some(&full), 1..) => full as f64 / inflight as f64,
            _ => 0.0,
        }
    }

    /// The stall cause with the most cycles, as `(name, cycles)`.
    /// `("none", 0)` when nothing stalled.
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        let causes = [
            ("mfc-slots", self.spe.stall_mfc_full_cycles),
            ("sync", self.spe.stall_sync_cycles),
            ("eib", self.spe.stall_eib_cycles),
            ("mem", self.spe.stall_mem_cycles),
        ];
        causes
            .into_iter()
            .max_by_key(|&(_, cycles)| cycles)
            .filter(|&(_, cycles)| cycles > 0)
            .unwrap_or(("none", 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spe(busy: u64, occ: Vec<u64>) -> SpeMetrics {
        SpeMetrics {
            busy_cycles: busy,
            occupancy_cycles: occ,
            ..SpeMetrics::default()
        }
    }

    #[test]
    fn summary_sums_elementwise() {
        let m = FabricMetrics {
            run_cycles: 100,
            per_spe: vec![spe(40, vec![10, 20, 70]), spe(60, vec![100, 0, 0])],
            rings: vec![RingStats {
                grants: 3,
                bytes: 384,
                busy_cycles: 24,
            }],
            banks: vec![BankMetrics {
                bank: BankId::Local,
                stats: BankStats {
                    accesses: 2,
                    bytes: 256,
                    busy_cycles: 16,
                    conflicts: 1,
                    ..BankStats::default()
                },
            }],
            faults: FaultStats {
                nacks: 5,
                retries: 4,
                retries_exhausted: 1,
                abandoned_packets: 1,
                degraded_cycles: 30,
            },
            events: 1000,
            suppressed_pumps: 7,
            peak_live_packets: 12,
        };
        let mut s = MetricsSummary::default();
        s.accumulate(&m);
        s.accumulate(&m);
        assert_eq!(s.runs, 2);
        assert_eq!(s.faults.nacks, 10);
        assert_eq!(
            s.faults.nacks,
            s.faults.retries + s.faults.retries_exhausted
        );
        assert_eq!(s.faults.degraded_cycles, 60);
        assert_eq!(s.run_cycles, 200);
        assert_eq!(s.spe.busy_cycles, 200);
        assert_eq!(s.spe.occupancy_cycles, vec![220, 40, 140]);
        assert_eq!(s.rings[0].bytes, 768);
        assert_eq!(s.banks[0].stats.conflicts, 2);
        assert_eq!(s.events, 2000);
        assert_eq!(s.suppressed_pumps, 14);
        assert_eq!(s.peak_live_packets, 12, "peak takes the max, not the sum");
    }

    #[test]
    fn saturation_share_ignores_empty_bucket() {
        let mut s = MetricsSummary::default();
        s.accumulate(&FabricMetrics {
            run_cycles: 100,
            per_spe: vec![spe(0, vec![50, 10, 40])],
            ..FabricMetrics::default()
        });
        // 40 of 50 in-flight cycles at the full budget.
        assert!((s.occupancy_saturated_share() - 0.8).abs() < 1e-12);
        assert!((s.occupancy_mean_inflight() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn dominant_stall_names_the_largest_cause() {
        let mut s = MetricsSummary::default();
        assert_eq!(s.dominant_stall(), ("none", 0));
        s.spe.stall_sync_cycles = 7;
        s.spe.stall_mfc_full_cycles = 3;
        assert_eq!(s.dominant_stall(), ("sync", 7));
    }

    #[test]
    fn limiter_tally_counts_each_run_once() {
        let sync_bound = FabricMetrics {
            run_cycles: 10,
            per_spe: vec![SpeMetrics {
                stall_sync_cycles: 8,
                stall_mfc_full_cycles: 2,
                ..SpeMetrics::default()
            }],
            ..FabricMetrics::default()
        };
        let slot_bound = FabricMetrics {
            run_cycles: 10,
            per_spe: vec![SpeMetrics {
                stall_mfc_full_cycles: 9,
                ..SpeMetrics::default()
            }],
            ..FabricMetrics::default()
        };
        let unstalled = FabricMetrics {
            run_cycles: 10,
            per_spe: vec![SpeMetrics {
                busy_cycles: 10,
                ..SpeMetrics::default()
            }],
            ..FabricMetrics::default()
        };
        assert_eq!(sync_bound.dominant_stall(), ("sync", 8));
        assert_eq!(slot_bound.dominant_stall(), ("mfc-slots", 9));
        assert_eq!(unstalled.dominant_stall(), ("none", 0));
        let mut s = MetricsSummary::default();
        s.accumulate(&sync_bound);
        s.accumulate(&slot_bound);
        s.accumulate(&slot_bound);
        s.accumulate(&unstalled);
        // STALL_CAUSES order: mfc-slots, sync, eib, mem.
        assert_eq!(s.limiter_runs, [2, 1, 0, 0]);
        assert_eq!(s.unstalled_runs, 1);
    }
}
