//! Queryable per-run trace store: a compact, append-only, checksummed
//! event log with a cycle-window/SPE/phase index, plus the per-run
//! artifact directory ([`RunDir`]) that links each store to its run's
//! identity and metrics.
//!
//! # Store file layout (`trace.bin`, schema 1)
//!
//! ```text
//! header   8 B   magic "CSTR", u32 LE schema
//! blocks   …     event blocks, ≤ 4096 events each
//! index    36 B × blocks (LE): offset u64, len u32, count u32,
//!                first_cycle u64, last_cycle u64,
//!                spe_mask u8, kind_mask u8, path_mask u8, reserved u8
//! trailer  104 B (LE): index_offset, block_count, total_events,
//!                counts[4] (issue/mem/grant/deliver), delivered_bytes,
//!                sim_events, packets, payload_checksum, index_checksum,
//!                tail magic "CSTREND1"
//! ```
//!
//! Each event record is `byte0 = kind(2b) | path(2b)<<2 | spe(3b)<<4`,
//! `byte1 = aux` (bank for memory accesses, ring for grants), `byte2 =
//! hops` (grants), then two LEB128 varints: the cycle (absolute for a
//! block's first event, a delta from the previous event otherwise —
//! the event stream is time-ordered by construction) and the payload
//! bytes. Checksums are the repo's pinned FNV-1a 64 over the payload
//! region (`[0, index_offset)`) and the index region.
//!
//! The writer streams: records go out as each 4096-event block fills,
//! so a paper-scale run traces in bounded memory (one block buffer plus
//! one 36-byte index entry per block). The format is a pure function of
//! the deterministic event stream, so the same [`RunKey`] produces
//! byte-identical stores at any `--jobs`.
//!
//! **Conservation by construction**: `Delivered` events are recorded at
//! packet retirement, so the store's deliver count equals
//! [`FabricReport::packets`] and its delivered bytes equal
//! [`FabricReport::total_bytes`] exactly — the cross-check
//! `cellsim-trace check` performs on every store.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cellsim_kernel::varint::{decode_u64, encode_u64, MAX_VARINT_BYTES};
use cellsim_kernel::{Cycle, MachineClock};

use crate::config::CellSystem;
use crate::diskcache::{fnv1a, key_fingerprint, key_json};
use crate::exec::{RunKey, RunSpec};
use crate::fabric::FabricReport;
use crate::failure::RunFailure;
use crate::json;
use crate::latency::DmaPathClass;
use crate::placement::Placement;
use crate::plan::TransferPlan;
use crate::tracing::{FabricEvent, TraceMeta, TraceSink};

/// Store file magic.
const MAGIC: [u8; 4] = *b"CSTR";
/// Store schema version (see the module docs for the layout it names).
pub const STORE_SCHEMA: u32 = 1;
/// Trailer magic, last 8 bytes of every complete store.
const TAIL_MAGIC: [u8; 8] = *b"CSTREND1";
/// Events per index block.
const BLOCK_EVENTS: u32 = 4096;
/// Bytes of one serialized index entry.
const INDEX_ENTRY_BYTES: usize = 36;
/// Bytes of the fixed header (magic + schema).
const HEADER_BYTES: usize = 8;
/// Bytes of the fixed trailer.
const TRAILER_BYTES: usize = 104;
/// The trace file inside a run's artifact directory.
pub const TRACE_FILE: &str = "trace.bin";
/// The manifest file inside a run's artifact directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Manifest schema version.
const MANIFEST_SCHEMA: u64 = 1;

/// The four traced packet phases, in on-disk code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An MFC put a packet on the command bus.
    Issue,
    /// A DRAM access was queued.
    Mem,
    /// The data arbiter granted a ring.
    Grant,
    /// A packet retired (payload at its final destination).
    Deliver,
}

impl TraceKind {
    /// All kinds in code order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Issue,
        TraceKind::Mem,
        TraceKind::Grant,
        TraceKind::Deliver,
    ];

    /// Stable query/CSV name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Issue => "issue",
            TraceKind::Mem => "mem",
            TraceKind::Grant => "grant",
            TraceKind::Deliver => "deliver",
        }
    }

    /// Parses a [`TraceKind::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.name() == s)
    }

    fn code(self) -> u8 {
        match self {
            TraceKind::Issue => 0,
            TraceKind::Mem => 1,
            TraceKind::Grant => 2,
            TraceKind::Deliver => 3,
        }
    }

    fn from_code(code: u8) -> TraceKind {
        TraceKind::ALL[(code & 3) as usize]
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn path_code(path: DmaPathClass) -> u8 {
    match path {
        DmaPathClass::MemGet => 0,
        DmaPathClass::MemPut => 1,
        DmaPathClass::LsGet => 2,
        DmaPathClass::LsPut => 3,
    }
}

fn path_from_code(code: u8) -> DmaPathClass {
    DmaPathClass::ALL[(code & 3) as usize]
}

/// Parses a [`DmaPathClass::name`] (`mem-get`, `mem-put`, `ls-get`,
/// `ls-put`).
#[must_use]
pub fn parse_path(s: &str) -> Option<DmaPathClass> {
    DmaPathClass::ALL.into_iter().find(|p| p.name() == s)
}

/// One decoded store event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Bus cycle the event happened at.
    pub at: u64,
    /// Which packet phase.
    pub kind: TraceKind,
    /// Initiating logical SPE.
    pub spe: u8,
    /// The packet's DMA path class.
    pub path: DmaPathClass,
    /// Kind-specific id: the bank for [`TraceKind::Mem`] (0 local, 1
    /// remote), the ring for [`TraceKind::Grant`], 0 otherwise.
    pub aux: u8,
    /// Ring path length ([`TraceKind::Grant`] only).
    pub hops: u8,
    /// Payload bytes (0 for [`TraceKind::Issue`]).
    pub bytes: u32,
}

/// A conjunctive event filter; `None` fields match everything. Blocks
/// whose index entry cannot match are skipped without decoding.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceFilter {
    /// Only events of this initiating logical SPE.
    pub spe: Option<u8>,
    /// Only events of this phase.
    pub kind: Option<TraceKind>,
    /// Only events of this DMA path class.
    pub path: Option<DmaPathClass>,
    /// Only events at or after this cycle.
    pub cycle_from: Option<u64>,
    /// Only events at or before this cycle (inclusive).
    pub cycle_to: Option<u64>,
}

impl TraceFilter {
    /// Whether `event` passes every set field.
    #[must_use]
    pub fn admits(&self, event: &StoreEvent) -> bool {
        self.spe.is_none_or(|s| s == event.spe)
            && self.kind.is_none_or(|k| k == event.kind)
            && self.path.is_none_or(|p| p == event.path)
            && self.cycle_from.is_none_or(|c| event.at >= c)
            && self.cycle_to.is_none_or(|c| event.at <= c)
    }

    fn admits_block(&self, block: &BlockEntry) -> bool {
        self.spe
            .is_none_or(|s| block.spe_mask & (1u8 << (s & 7)) != 0)
            && self
                .kind
                .is_none_or(|k| block.kind_mask & (1u8 << k.code()) != 0)
            && self
                .path
                .is_none_or(|p| block.path_mask & (1u8 << path_code(p)) != 0)
            && self.cycle_from.is_none_or(|c| block.last_cycle >= c)
            && self.cycle_to.is_none_or(|c| block.first_cycle <= c)
    }
}

/// Why a store could not be opened or decoded.
#[derive(Debug)]
pub enum TraceStoreError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The bytes are not a complete, checksum-consistent store.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// The store is a different schema version than this reader.
    Schema {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
}

impl fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            TraceStoreError::Corrupt { detail } => {
                write!(f, "corrupt trace store: {detail}")
            }
            TraceStoreError::Schema { found, expected } => write!(
                f,
                "trace store schema {found} (this reader understands {expected})"
            ),
        }
    }
}

impl std::error::Error for TraceStoreError {}

impl From<io::Error> for TraceStoreError {
    fn from(e: io::Error) -> TraceStoreError {
        TraceStoreError::Io(e)
    }
}

fn corrupt(detail: impl Into<String>) -> TraceStoreError {
    TraceStoreError::Corrupt {
        detail: detail.into(),
    }
}

/// One index entry: where a block lives and what could be inside it.
#[derive(Debug, Clone, Copy, Default)]
struct BlockEntry {
    offset: u64,
    len: u32,
    count: u32,
    first_cycle: u64,
    last_cycle: u64,
    spe_mask: u8,
    kind_mask: u8,
    path_mask: u8,
}

impl BlockEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.first_cycle.to_le_bytes());
        out.extend_from_slice(&self.last_cycle.to_le_bytes());
        out.push(self.spe_mask);
        out.push(self.kind_mask);
        out.push(self.path_mask);
        out.push(0);
    }

    fn decode(bytes: &[u8]) -> BlockEntry {
        BlockEntry {
            offset: read_u64(bytes, 0),
            len: read_u32(bytes, 8),
            count: read_u32(bytes, 12),
            first_cycle: read_u64(bytes, 16),
            last_cycle: read_u64(bytes, 24),
            spe_mask: bytes[32],
            kind_mask: bytes[33],
            path_mask: bytes[34],
        }
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Exact event totals of a store, read from its verified trailer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTotals {
    /// Total trace records.
    pub events: u64,
    /// Command-issue events.
    pub issued: u64,
    /// DRAM-access events.
    pub mem_accesses: u64,
    /// Ring-grant events.
    pub grants: u64,
    /// Retirement events — equals the run's delivered packet count.
    pub delivered: u64,
    /// Σ bytes over retirement events — equals the run's total bytes.
    pub delivered_bytes: u64,
    /// The run's [`FabricMetrics::events`](crate::FabricMetrics::events)
    /// (simulation events processed, not trace records).
    pub sim_events: u64,
    /// The run's [`FabricReport::packets`].
    pub packets: u64,
}

/// What a finalized store contains, returned by
/// [`TraceStoreWriter::finalize`].
#[derive(Debug, Clone, Copy)]
pub struct StoreSummary {
    /// Trace records written.
    pub events: u64,
    /// Total store file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the payload region.
    pub checksum: u64,
}

/// Accumulators of the block currently being filled.
#[derive(Debug, Clone, Copy, Default)]
struct OpenBlock {
    count: u32,
    first_cycle: u64,
    last_cycle: u64,
    spe_mask: u8,
    kind_mask: u8,
    path_mask: u8,
}

/// Streaming store writer: a [`TraceSink`] that encodes each event as it
/// arrives and flushes every completed 4096-event block, so whole-run
/// memory is one block buffer plus 36 bytes of index per block.
///
/// I/O errors are latched, not surfaced mid-run ([`TraceSink`]'s
/// contract — the simulation must not observe its observer);
/// [`TraceStoreWriter::finalize`] reports the first one.
#[derive(Debug)]
pub struct TraceStoreWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
    /// Incremental FNV-1a over everything emitted so far.
    checksum: u64,
    /// Bytes emitted so far (header + completed blocks).
    written: u64,
    /// Encoding buffer of the block currently being filled.
    buf: Vec<u8>,
    cur: OpenBlock,
    blocks: Vec<BlockEntry>,
    counts: [u64; 4],
    delivered_bytes: u64,
}

impl<W: Write> TraceStoreWriter<W> {
    /// Starts a store on `out` (the header is written immediately).
    pub fn new(out: W) -> TraceStoreWriter<W> {
        let mut w = TraceStoreWriter {
            out,
            error: None,
            checksum: 0xcbf2_9ce4_8422_2325,
            written: 0,
            buf: Vec::with_capacity(64 << 10),
            cur: OpenBlock::default(),
            blocks: Vec::new(),
            counts: [0; 4],
            delivered_bytes: 0,
        };
        let mut header = [0u8; HEADER_BYTES];
        header[..4].copy_from_slice(&MAGIC);
        header[4..].copy_from_slice(&STORE_SCHEMA.to_le_bytes());
        w.emit(&header);
        w
    }

    /// Writes `bytes` through, folding them into the payload checksum.
    fn emit(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        for &b in bytes {
            self.checksum ^= u64::from(b);
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
        match self.out.write_all(bytes) {
            Ok(()) => self.written += bytes.len() as u64,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_block(&mut self) {
        if self.cur.count == 0 {
            return;
        }
        let entry = BlockEntry {
            offset: self.written,
            len: u32::try_from(self.buf.len()).expect("block fits u32"),
            count: self.cur.count,
            first_cycle: self.cur.first_cycle,
            last_cycle: self.cur.last_cycle,
            spe_mask: self.cur.spe_mask,
            kind_mask: self.cur.kind_mask,
            path_mask: self.cur.path_mask,
        };
        let buf = std::mem::take(&mut self.buf);
        self.emit(&buf);
        self.buf = buf;
        self.buf.clear();
        self.blocks.push(entry);
        self.cur = OpenBlock::default();
    }

    /// Flushes the partial block, writes index and trailer, and flushes
    /// the underlying writer.
    ///
    /// `sim_events` and `packets` are the run's
    /// [`FabricMetrics::events`](crate::FabricMetrics::events) and
    /// [`FabricReport::packets`], embedded so readers can reconcile the
    /// store against the run's metrics with no other file present.
    ///
    /// # Errors
    ///
    /// The first I/O error latched during recording, or any error from
    /// writing the index/trailer.
    pub fn finalize(mut self, sim_events: u64, packets: u64) -> io::Result<(W, StoreSummary)> {
        self.flush_block();
        let index_offset = self.written;
        let payload_checksum = if self.error.is_some() {
            0
        } else {
            self.checksum
        };
        let mut index = Vec::with_capacity(self.blocks.len() * INDEX_ENTRY_BYTES);
        for block in &self.blocks {
            block.encode(&mut index);
        }
        let index_checksum = fnv1a(&index);
        self.emit(&index);
        let total_events: u64 = self.counts.iter().sum();
        let mut trailer = Vec::with_capacity(TRAILER_BYTES);
        trailer.extend_from_slice(&index_offset.to_le_bytes());
        trailer.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        trailer.extend_from_slice(&total_events.to_le_bytes());
        for count in self.counts {
            trailer.extend_from_slice(&count.to_le_bytes());
        }
        trailer.extend_from_slice(&self.delivered_bytes.to_le_bytes());
        trailer.extend_from_slice(&sim_events.to_le_bytes());
        trailer.extend_from_slice(&packets.to_le_bytes());
        trailer.extend_from_slice(&payload_checksum.to_le_bytes());
        trailer.extend_from_slice(&index_checksum.to_le_bytes());
        trailer.extend_from_slice(&TAIL_MAGIC);
        self.emit(&trailer);
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok((
                self.out,
                StoreSummary {
                    events: total_events,
                    bytes: self.written,
                    checksum: payload_checksum,
                },
            )),
        }
    }
}

impl<W: Write> TraceSink for TraceStoreWriter<W> {
    fn record(&mut self, at: Cycle, meta: TraceMeta, event: FabricEvent) {
        let at = at.as_u64();
        let (kind, aux, hops, bytes) = match event {
            FabricEvent::CommandIssued { .. } => (TraceKind::Issue, 0u8, 0u8, 0u32),
            FabricEvent::MemoryAccess { bank, bytes } => (TraceKind::Mem, bank as u8, 0, bytes),
            FabricEvent::Granted { ring, hops, bytes } => (
                TraceKind::Grant,
                u8::try_from(ring.0).unwrap_or(u8::MAX),
                u8::try_from(hops).unwrap_or(u8::MAX),
                bytes,
            ),
            FabricEvent::Delivered { bytes, .. } => {
                self.delivered_bytes += u64::from(bytes);
                (TraceKind::Deliver, 0, 0, bytes)
            }
        };
        let spe = meta.spe & 7;
        let path = path_code(meta.path);
        // The event stream is time-ordered (the kernel delivers events in
        // (time, FIFO) order), so the delta is non-negative; encode the
        // first event of each block absolute so blocks decode standalone.
        let delta = if self.cur.count == 0 {
            self.cur.first_cycle = at;
            at
        } else {
            at.saturating_sub(self.cur.last_cycle)
        };
        self.buf.push(kind.code() | (path << 2) | (spe << 4));
        self.buf.push(aux);
        self.buf.push(hops);
        let mut scratch = [0u8; MAX_VARINT_BYTES];
        let n = encode_u64(delta, &mut scratch);
        self.buf.extend_from_slice(&scratch[..n]);
        let n = encode_u64(u64::from(bytes), &mut scratch);
        self.buf.extend_from_slice(&scratch[..n]);
        self.cur.last_cycle = at;
        self.cur.count += 1;
        self.cur.spe_mask |= 1 << spe;
        self.cur.kind_mask |= 1 << kind.code();
        self.cur.path_mask |= 1 << path;
        self.counts[kind.code() as usize] += 1;
        if self.cur.count >= BLOCK_EVENTS {
            self.flush_block();
        }
    }
}

/// A verified, opened store, ready for filtered queries.
#[derive(Debug)]
pub struct TraceStore {
    bytes: Vec<u8>,
    blocks: Vec<BlockEntry>,
    totals: StoreTotals,
    payload_checksum: u64,
}

impl TraceStore {
    /// Opens and fully verifies the store at `path` (magics, schema,
    /// both checksums, and index-structure invariants).
    ///
    /// # Errors
    ///
    /// [`TraceStoreError::Io`] when the file cannot be read,
    /// [`TraceStoreError::Schema`] on a version mismatch, and
    /// [`TraceStoreError::Corrupt`] on any truncation, bit flip, or
    /// structural inconsistency — never a panic.
    pub fn open(path: &Path) -> Result<TraceStore, TraceStoreError> {
        TraceStore::from_bytes(crate::iofault::read(path)?)
    }

    /// Verifies `bytes` as a complete store (see [`TraceStore::open`]).
    ///
    /// # Errors
    ///
    /// As [`TraceStore::open`], minus I/O.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TraceStore, TraceStoreError> {
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(corrupt(format!(
                "{} bytes is shorter than header + trailer",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(corrupt("bad header magic"));
        }
        let schema = read_u32(&bytes, 4);
        if schema != STORE_SCHEMA {
            return Err(TraceStoreError::Schema {
                found: schema,
                expected: STORE_SCHEMA,
            });
        }
        let trailer_at = bytes.len() - TRAILER_BYTES;
        if bytes[bytes.len() - 8..] != TAIL_MAGIC {
            return Err(corrupt("bad trailer magic (truncated store?)"));
        }
        let index_offset = read_u64(&bytes, trailer_at);
        let block_count = read_u64(&bytes, trailer_at + 8);
        let totals = StoreTotals {
            events: read_u64(&bytes, trailer_at + 16),
            issued: read_u64(&bytes, trailer_at + 24),
            mem_accesses: read_u64(&bytes, trailer_at + 32),
            grants: read_u64(&bytes, trailer_at + 40),
            delivered: read_u64(&bytes, trailer_at + 48),
            delivered_bytes: read_u64(&bytes, trailer_at + 56),
            sim_events: read_u64(&bytes, trailer_at + 64),
            packets: read_u64(&bytes, trailer_at + 72),
        };
        let payload_checksum = read_u64(&bytes, trailer_at + 80);
        let index_checksum = read_u64(&bytes, trailer_at + 88);
        let index_len = (trailer_at as u64).checked_sub(index_offset);
        let Some(index_len) = index_len else {
            return Err(corrupt("index offset past the trailer"));
        };
        if index_len != block_count.saturating_mul(INDEX_ENTRY_BYTES as u64) {
            return Err(corrupt(format!(
                "index region is {index_len} bytes for {block_count} blocks"
            )));
        }
        if index_offset < HEADER_BYTES as u64 {
            return Err(corrupt("index offset inside the header"));
        }
        let index_offset = usize::try_from(index_offset).expect("index offset fits usize");
        if fnv1a(&bytes[..index_offset]) != payload_checksum {
            return Err(corrupt("payload checksum mismatch"));
        }
        if fnv1a(&bytes[index_offset..trailer_at]) != index_checksum {
            return Err(corrupt("index checksum mismatch"));
        }
        let mut blocks = Vec::with_capacity(usize::try_from(block_count).unwrap_or(0));
        let mut next_offset = HEADER_BYTES as u64;
        let mut last_cycle = 0u64;
        let mut counted = 0u64;
        for i in 0..usize::try_from(block_count).expect("block count fits usize") {
            let at = index_offset + i * INDEX_ENTRY_BYTES;
            let entry = BlockEntry::decode(&bytes[at..at + INDEX_ENTRY_BYTES]);
            if entry.offset != next_offset {
                return Err(corrupt(format!("block {i} offset is not contiguous")));
            }
            if entry.count == 0 || entry.count > BLOCK_EVENTS {
                return Err(corrupt(format!("block {i} has {} events", entry.count)));
            }
            if entry.first_cycle > entry.last_cycle || (i > 0 && entry.first_cycle < last_cycle) {
                return Err(corrupt(format!("block {i} cycle range is not monotone")));
            }
            next_offset += u64::from(entry.len);
            last_cycle = entry.last_cycle;
            counted += u64::from(entry.count);
            blocks.push(entry);
        }
        if next_offset != index_offset as u64 {
            return Err(corrupt("blocks do not tile the payload region"));
        }
        if counted != totals.events {
            return Err(corrupt(format!(
                "index counts {counted} events, trailer says {}",
                totals.events
            )));
        }
        Ok(TraceStore {
            bytes,
            blocks,
            totals,
            payload_checksum,
        })
    }

    /// The trailer's exact totals.
    pub fn totals(&self) -> &StoreTotals {
        &self.totals
    }

    /// The verified FNV-1a 64 payload checksum (what manifests record).
    pub fn payload_checksum(&self) -> u64 {
        self.payload_checksum
    }

    /// Index blocks in the store.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total store size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Streams every event admitted by `filter` through `visit`, in time
    /// order, decoding only the blocks the index cannot rule out.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError::Corrupt`] if a block fails to decode (the
    /// checksums make this unreachable short of a writer bug, but it is
    /// an error, not a panic), or [`TraceStoreError::Io`] from `visit`.
    pub fn for_each(
        &self,
        filter: &TraceFilter,
        mut visit: impl FnMut(&StoreEvent) -> io::Result<()>,
    ) -> Result<(), TraceStoreError> {
        for (i, block) in self.blocks.iter().enumerate() {
            if !filter.admits_block(block) {
                continue;
            }
            self.decode_block(i, block, &mut |event| {
                if filter.admits(event) {
                    visit(event).map_err(TraceStoreError::Io)?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    fn decode_block(
        &self,
        i: usize,
        block: &BlockEntry,
        visit: &mut impl FnMut(&StoreEvent) -> Result<(), TraceStoreError>,
    ) -> Result<(), TraceStoreError> {
        let start = usize::try_from(block.offset).expect("offset fits usize");
        let mut slice = &self.bytes[start..start + block.len as usize];
        let mut prev = 0u64;
        for n in 0..block.count {
            if slice.len() < 3 {
                return Err(corrupt(format!("block {i} ends mid-record")));
            }
            let head = slice[0];
            let aux = slice[1];
            let hops = slice[2];
            slice = &slice[3..];
            let Some((delta, used)) = decode_u64(slice) else {
                return Err(corrupt(format!("block {i} has a bad cycle varint")));
            };
            slice = &slice[used..];
            let Some((bytes, used)) = decode_u64(slice) else {
                return Err(corrupt(format!("block {i} has a bad bytes varint")));
            };
            slice = &slice[used..];
            let at = if n == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt(format!("block {i} cycle overflow")))?
            };
            prev = at;
            let bytes = u32::try_from(bytes)
                .map_err(|_| corrupt(format!("block {i} event bytes overflow u32")))?;
            visit(&StoreEvent {
                at,
                kind: TraceKind::from_code(head & 3),
                spe: (head >> 4) & 7,
                path: path_from_code((head >> 2) & 3),
                aux,
                hops,
                bytes,
            })?;
        }
        if !slice.is_empty() {
            return Err(corrupt(format!("block {i} has trailing bytes")));
        }
        Ok(())
    }

    /// Recounts every event by full decode — the ground truth the
    /// trailer totals must match. Returns `(counts by kind, Σ delivered
    /// bytes)`.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError::Corrupt`] if any block fails to decode.
    pub fn recount(&self) -> Result<([u64; 4], u64), TraceStoreError> {
        let mut counts = [0u64; 4];
        let mut delivered_bytes = 0u64;
        self.for_each(&TraceFilter::default(), |event| {
            counts[event.kind.code() as usize] += 1;
            if event.kind == TraceKind::Deliver {
                delivered_bytes += u64::from(event.bytes);
            }
            Ok(())
        })?;
        Ok((counts, delivered_bytes))
    }

    /// Streams the store as Chrome tracing JSON (`chrome://tracing`,
    /// Perfetto) — the projection the `--trace-out` flag renders. Event
    /// shapes match the original in-memory exporter byte for byte.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError::Io`] from `out`, or
    /// [`TraceStoreError::Corrupt`] if a block fails to decode.
    pub fn export_chrome(
        &self,
        clock: &MachineClock,
        out: &mut impl Write,
    ) -> Result<(), TraceStoreError> {
        out.write_all(
            b"{\"traceEvents\":[\n\
              {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
              \"args\":{\"name\":\"SPEs\"}},\n\
              {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
              \"args\":{\"name\":\"EIB rings\"}},\n\
              {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
              \"args\":{\"name\":\"XDR banks\"}}",
        )?;
        self.for_each(&TraceFilter::default(), |e| {
            let ts = clock.seconds(e.at) * 1e6;
            let (name, pid, tid, extra) = match e.kind {
                TraceKind::Issue => ("issue", 0, u64::from(e.spe), String::new()),
                TraceKind::Deliver => (
                    "deliver",
                    0,
                    u64::from(e.spe),
                    format!(",\"args\":{{\"bytes\":{}}}", e.bytes),
                ),
                TraceKind::Grant => (
                    "grant",
                    1,
                    u64::from(e.aux),
                    format!(",\"args\":{{\"bytes\":{},\"hops\":{}}}", e.bytes, e.hops),
                ),
                TraceKind::Mem => (
                    if e.aux == 0 { "local" } else { "remote" },
                    2,
                    u64::from(e.aux),
                    format!(",\"args\":{{\"bytes\":{}}}", e.bytes),
                ),
            };
            write!(
                out,
                ",\n{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts:.4},\"pid\":{pid},\"tid\":{tid}{extra}}}"
            )
        })?;
        out.write_all(b"\n]}\n")?;
        Ok(())
    }
}

// ---- per-run artifact directories ---------------------------------------

/// Activity counters of a [`RunDir`] since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunDirStats {
    /// Entries recorded (trace + manifest committed).
    pub written: u64,
    /// Runs answered from cache with their artifact already complete.
    pub reused: u64,
    /// Artifact I/O failures (the runs themselves still completed).
    pub errors: u64,
}

/// A per-run artifact directory: one subdirectory per [`RunKey`]
/// (named by its [`key_fingerprint`], the same 16-hex identity the disk
/// cache uses), each holding [`TRACE_FILE`] and [`MANIFEST_FILE`].
///
/// Artifacts are accelerators' siblings, never correctness
/// dependencies: every artifact write is atomic (unique temp file, then
/// rename), and any I/O failure is counted and absorbed — the run still
/// returns its report.
#[derive(Debug)]
pub struct RunDir {
    root: PathBuf,
    tmp_counter: AtomicU64,
    written: AtomicU64,
    reused: AtomicU64,
    errors: AtomicU64,
}

impl RunDir {
    /// Opens (creating if needed) the artifact root.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the directory.
    pub fn create(root: &Path) -> io::Result<RunDir> {
        fs::create_dir_all(root)?;
        Ok(RunDir {
            root: root.to_path_buf(),
            tmp_counter: AtomicU64::new(0),
            written: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The artifact root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `key`'s artifact directory (it may not exist yet).
    pub fn entry_dir(&self, key: &RunKey) -> PathBuf {
        self.root.join(format!("{:016x}", key_fingerprint(key)))
    }

    /// Counters since open.
    pub fn stats(&self) -> RunDirStats {
        RunDirStats {
            written: self.written.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Notes that a cached report was reused because `key`'s artifact is
    /// already complete (the executor's census counter).
    pub fn note_reused(&self) {
        self.reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether `key` has a complete artifact: a manifest that parses,
    /// carries `key`'s full identity, and agrees with the trace file's
    /// size. Anything less reads as absent — the caller re-simulates and
    /// the entry self-heals by overwrite.
    pub fn is_complete(&self, key: &RunKey) -> bool {
        let dir = self.entry_dir(key);
        let Ok(manifest) = Manifest::load(&dir) else {
            return false;
        };
        if manifest.fingerprint != format!("{:016x}", key_fingerprint(key))
            || manifest.key != key_json(key)
        {
            return false;
        }
        fs::metadata(dir.join(&manifest.trace_file))
            .is_ok_and(|meta| meta.len() == manifest.trace_bytes)
    }

    fn tmp_path(&self) -> PathBuf {
        self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Runs `spec` with a streaming store writer attached and commits
    /// the trace + manifest into `spec.key`'s entry. Timing and report
    /// are identical to an untraced run; artifact I/O failures are
    /// counted ([`RunDirStats::errors`]) and absorbed.
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] exactly when the untraced run would stall
    /// (the partial artifact is removed).
    pub fn run_recorded(&self, spec: &RunSpec) -> Result<FabricReport, RunFailure> {
        let tmp = self.tmp_path();
        let file = match crate::iofault::create_file(&tmp) {
            Ok(file) => file,
            Err(_) => {
                // Cannot even open a temp file: run untraced, same result.
                self.errors.fetch_add(1, Ordering::Relaxed);
                return spec.system.try_run(&spec.placement, &spec.plan);
            }
        };
        let mut writer = TraceStoreWriter::new(io::BufWriter::new(file));
        let report = match spec
            .system
            .try_run_with_sink(&spec.placement, &spec.plan, &mut writer)
        {
            Ok(report) => report,
            Err(failure) => {
                drop(writer);
                let _ = fs::remove_file(&tmp);
                return Err(failure);
            }
        };
        let summary = match writer.finalize(report.metrics.events, report.packets) {
            Ok((_out, summary)) => summary,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
                return Ok(report);
            }
        };
        let dir = self.entry_dir(&spec.key);
        let manifest = manifest_json(&spec.key, &report, &summary);
        let committed = fs::create_dir_all(&dir)
            .and_then(|()| crate::iofault::rename(&tmp, dir.join(TRACE_FILE)))
            .and_then(|()| {
                let mtmp = self.tmp_path();
                crate::iofault::write(&mtmp, &manifest)
                    .and_then(|()| crate::iofault::rename(&mtmp, dir.join(MANIFEST_FILE)))
                    .inspect_err(|_| {
                        let _ = fs::remove_file(&mtmp);
                    })
            });
        match committed {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
            }
        }
        Ok(report)
    }
}

/// Records one standalone run into a store file at `path` — the
/// `--trace-out`-without-`--run-dir` path, where the store is a
/// temporary vehicle for the Chrome projection.
///
/// # Errors
///
/// `Err(Ok(failure))` is never constructed; the outer error is a
/// formatted message naming what failed (stall or I/O), matching the
/// CLI's error reporting.
pub fn record_run_to(
    system: &CellSystem,
    placement: &Placement,
    plan: &TransferPlan,
    path: &Path,
) -> Result<(FabricReport, StoreSummary), String> {
    let file = crate::iofault::create_file(path)
        .map_err(|e| format!("could not create {}: {e}", path.display()))?;
    let mut writer = TraceStoreWriter::new(io::BufWriter::new(file));
    let report = system
        .try_run_with_sink(placement, plan, &mut writer)
        .map_err(|failure| {
            let _ = fs::remove_file(path);
            format!("trace run stalled: {failure}")
        })?;
    let summary = writer
        .finalize(report.metrics.events, report.packets)
        .map_err(|e| {
            let _ = fs::remove_file(path);
            format!("could not write {}: {e}", path.display())
        })?
        .1;
    Ok((report, summary))
}

// ---- manifests ----------------------------------------------------------

/// The canonical one-line manifest linking a run's identity, metrics
/// digest and trace file. Purely deterministic (floats as IEEE bits),
/// so serial, parallel and cached runs of one [`RunKey`] write
/// byte-identical manifests.
fn manifest_json(key: &RunKey, report: &FabricReport, summary: &StoreSummary) -> String {
    let stall_cycles: u64 = report
        .metrics
        .per_spe
        .iter()
        .map(crate::metrics::SpeMetrics::stall_cycles)
        .sum();
    format!(
        "{{\"schema\":{MANIFEST_SCHEMA},\"fingerprint\":\"{:016x}\",\
         \"config\":\"{:#018x}\",\"faults\":\"{:#018x}\",\"key\":{},\
         \"metrics\":{{\"cycles\":{},\"total_bytes\":{},\"events\":{},\
         \"packets\":{},\"abandoned\":{},\"aggregate_gbps_bits\":{},\
         \"stall_cycles\":{stall_cycles},\"dominant_stall\":\"{}\"}},\
         \"trace\":{{\"file\":\"{TRACE_FILE}\",\"bytes\":{},\"events\":{},\
         \"checksum\":\"{:016x}\"}}}}\n",
        key_fingerprint(key),
        key.config,
        key.faults,
        key_json(key),
        report.cycles,
        report.total_bytes,
        report.metrics.events,
        report.packets,
        report.metrics.faults.abandoned_packets,
        report.aggregate_gbps.to_bits(),
        report.metrics.dominant_stall().0,
        summary.bytes,
        summary.events,
        summary.checksum,
    )
}

/// A parsed run manifest: the identity/metrics half of an artifact
/// entry, everything `cellsim-trace` needs without decoding the store.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// 16-hex [`key_fingerprint`] — the entry directory's name.
    pub fingerprint: String,
    /// Canonical one-line key JSON (full run identity).
    pub key: String,
    /// Workload pattern, e.g. `"cycle"`.
    pub pattern: String,
    /// Active SPEs.
    pub spes: u64,
    /// Payload bytes per SPE.
    pub volume: u64,
    /// DMA element size.
    pub elem: u64,
    /// Run length in bus cycles.
    pub cycles: u64,
    /// Total payload bytes delivered.
    pub total_bytes: u64,
    /// Simulation events processed
    /// ([`FabricMetrics::events`](crate::FabricMetrics::events)).
    pub events: u64,
    /// Bus packets delivered ([`FabricReport::packets`]).
    pub packets: u64,
    /// Packets abandoned by fault-plan retry exhaustion.
    pub abandoned: u64,
    /// Aggregate bandwidth in GB/s (exact IEEE bits round-trip).
    pub aggregate_gbps: f64,
    /// Σ stall cycles over all SPEs.
    pub stall_cycles: u64,
    /// Dominant stall cause name (`"none"` when unstalled).
    pub dominant_stall: String,
    /// Trace file name within the entry directory.
    pub trace_file: String,
    /// Trace file size in bytes.
    pub trace_bytes: u64,
    /// Trace records in the store.
    pub trace_events: u64,
    /// 16-hex payload checksum of the store.
    pub trace_checksum: String,
}

impl Manifest {
    /// Loads and parses `dir`'s manifest.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError::Io`] when the file cannot be read,
    /// [`TraceStoreError::Corrupt`] when it does not parse as a
    /// schema-1 manifest.
    pub fn load(dir: &Path) -> Result<Manifest, TraceStoreError> {
        let path = dir.join(MANIFEST_FILE);
        let text = crate::iofault::read_to_string(&path)?;
        Manifest::parse(&text)
            .ok_or_else(|| corrupt(format!("unreadable manifest {}", path.display())))
    }

    fn parse(text: &str) -> Option<Manifest> {
        let v = json::parse(text).ok()?;
        if v.get("schema")?.as_u64()? != MANIFEST_SCHEMA {
            return None;
        }
        let key = v.get("key")?;
        let metrics = v.get("metrics")?;
        let trace = v.get("trace")?;
        Some(Manifest {
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            key: raw_key_json(text)?,
            pattern: key.get("pattern")?.as_str()?.to_string(),
            spes: key.get("spes")?.as_u64()?,
            volume: key.get("volume")?.as_u64()?,
            elem: key.get("elem")?.as_u64()?,
            cycles: metrics.get("cycles")?.as_u64()?,
            total_bytes: metrics.get("total_bytes")?.as_u64()?,
            events: metrics.get("events")?.as_u64()?,
            packets: metrics.get("packets")?.as_u64()?,
            abandoned: metrics.get("abandoned")?.as_u64()?,
            aggregate_gbps: f64::from_bits(metrics.get("aggregate_gbps_bits")?.as_u64()?),
            stall_cycles: metrics.get("stall_cycles")?.as_u64()?,
            dominant_stall: metrics.get("dominant_stall")?.as_str()?.to_string(),
            trace_file: trace.get("file")?.as_str()?.to_string(),
            trace_bytes: trace.get("bytes")?.as_u64()?,
            trace_events: trace.get("events")?.as_u64()?,
            trace_checksum: trace.get("checksum")?.as_str()?.to_string(),
        })
    }
}

/// Extracts the manifest's embedded key object verbatim. Manifests are
/// written canonically (the key is [`key_json`]'s exact output: a flat
/// object whose only brackets are the placement array), so the first
/// `}` after `"key":{` closes it.
fn raw_key_json(text: &str) -> Option<String> {
    let start = text.find("\"key\":{")? + "\"key\":".len();
    let end = start + text[start..].find('}')?;
    Some(text[start..=end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Workload;
    use crate::plan::SyncPolicy;
    use std::sync::Arc;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cellsim-ts-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record_to_vec(plan: &TransferPlan) -> (FabricReport, Vec<u8>) {
        let system = CellSystem::blade();
        let mut writer = TraceStoreWriter::new(Vec::new());
        let report = system
            .try_run_with_sink(&Placement::identity(), plan, &mut writer)
            .unwrap();
        let (bytes, summary) = writer
            .finalize(report.metrics.events, report.packets)
            .unwrap();
        assert_eq!(summary.bytes, bytes.len() as u64);
        (report, bytes)
    }

    fn two_spe_plan() -> TransferPlan {
        TransferPlan::builder()
            .get_from_memory(0, 256 << 10, 4096, SyncPolicy::AfterAll)
            .put_to_memory(1, 128 << 10, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap()
    }

    #[test]
    fn store_round_trips_and_conserves_against_the_report() {
        let (report, bytes) = record_to_vec(&two_spe_plan());
        let store = TraceStore::from_bytes(bytes).unwrap();
        let totals = store.totals();
        // Conservation by construction: deliver events == packets,
        // delivered bytes == total bytes, embedded sim counters match.
        assert_eq!(totals.delivered, report.packets);
        assert_eq!(totals.delivered_bytes, report.total_bytes);
        assert_eq!(totals.sim_events, report.metrics.events);
        assert_eq!(totals.packets, report.packets);
        assert_eq!(totals.issued, report.packets);
        // (256 + 128) KiB / 128 B = 3072 packets; multiple index blocks.
        assert_eq!(report.packets, 3072);
        assert!(store.block_count() >= 2, "expected multi-block store");
        // The trailer agrees with a ground-truth full decode.
        let (counts, delivered_bytes) = store.recount().unwrap();
        assert_eq!(
            counts,
            [
                totals.issued,
                totals.mem_accesses,
                totals.grants,
                totals.delivered
            ]
        );
        assert_eq!(delivered_bytes, totals.delivered_bytes);
    }

    #[test]
    fn filtered_queries_match_brute_force() {
        let (_, bytes) = record_to_vec(&two_spe_plan());
        let store = TraceStore::from_bytes(bytes).unwrap();
        let mut all = Vec::new();
        store
            .for_each(&TraceFilter::default(), |e| {
                all.push(*e);
                Ok(())
            })
            .unwrap();
        assert!(all.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
        let mid = all[all.len() / 2].at;
        let filters = [
            TraceFilter {
                spe: Some(1),
                ..TraceFilter::default()
            },
            TraceFilter {
                kind: Some(TraceKind::Deliver),
                ..TraceFilter::default()
            },
            TraceFilter {
                path: Some(DmaPathClass::MemPut),
                ..TraceFilter::default()
            },
            TraceFilter {
                spe: Some(0),
                kind: Some(TraceKind::Mem),
                cycle_from: Some(mid),
                ..TraceFilter::default()
            },
            TraceFilter {
                cycle_from: Some(mid),
                cycle_to: Some(mid + 1000),
                ..TraceFilter::default()
            },
        ];
        for filter in filters {
            let mut got = Vec::new();
            store
                .for_each(&filter, |e| {
                    got.push(*e);
                    Ok(())
                })
                .unwrap();
            let want: Vec<StoreEvent> = all.iter().copied().filter(|e| filter.admits(e)).collect();
            assert_eq!(got, want, "filter {filter:?}");
            assert!(!want.is_empty(), "degenerate filter {filter:?}");
        }
    }

    #[test]
    fn mem_put_delivered_events_record_at_retirement() {
        // A mem-PUT retires when its DRAM write completes, after wire
        // delivery; the store's deliver count must equal packets anyway.
        let plan = TransferPlan::builder()
            .put_to_memory(0, 64 << 10, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let (report, bytes) = record_to_vec(&plan);
        let store = TraceStore::from_bytes(bytes).unwrap();
        assert_eq!(store.totals().delivered, report.packets);
        assert_eq!(store.totals().delivered_bytes, report.total_bytes);
        // Every path is mem-put.
        let mut n = 0u64;
        store
            .for_each(
                &TraceFilter {
                    path: Some(DmaPathClass::MemPut),
                    ..TraceFilter::default()
                },
                |_| {
                    n += 1;
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(n, store.totals().events);
    }

    #[test]
    fn corruption_yields_typed_errors_never_panics() {
        let (_, bytes) = record_to_vec(&two_spe_plan());
        // Truncations at every suffix length of interest.
        for cut in [0, 4, HEADER_BYTES, bytes.len() / 2, bytes.len() - 1] {
            let err = TraceStore::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(err, TraceStoreError::Corrupt { .. }),
                "cut={cut} gave {err}"
            );
        }
        // A flipped payload bit fails the payload checksum.
        let mut flipped = bytes.clone();
        flipped[HEADER_BYTES + 1] ^= 0x40;
        assert!(matches!(
            TraceStore::from_bytes(flipped).unwrap_err(),
            TraceStoreError::Corrupt { .. }
        ));
        // A flipped index bit fails the index checksum.
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - TRAILER_BYTES - 4] ^= 0x01;
        assert!(matches!(
            TraceStore::from_bytes(flipped).unwrap_err(),
            TraceStoreError::Corrupt { .. }
        ));
        // A future schema version is refused as such.
        let mut future = bytes.clone();
        future[4] = 99;
        assert!(matches!(
            TraceStore::from_bytes(future).unwrap_err(),
            TraceStoreError::Schema {
                found: 99,
                expected: STORE_SCHEMA
            }
        ));
        // Garbage is corrupt, not a panic.
        assert!(TraceStore::from_bytes(vec![0u8; 400]).is_err());
        assert!(TraceStore::from_bytes(Vec::new()).is_err());
    }

    #[test]
    fn run_dir_records_completes_and_self_heals() {
        let root = tmp_dir("rundir");
        let rundir = RunDir::create(&root).unwrap();
        let system = CellSystem::blade();
        let plan = Arc::new(
            TransferPlan::builder()
                .get_from_memory(0, 64 << 10, 4096, SyncPolicy::AfterAll)
                .build()
                .unwrap(),
        );
        let spec = RunSpec::new(
            &system,
            Workload {
                pattern: "mem-get",
                spes: 1,
                volume: 64 << 10,
                elem: 4096,
                list: false,
                sync: SyncPolicy::AfterAll,
                params: 0,
            },
            Placement::identity(),
            Arc::clone(&plan),
        );
        assert!(!rundir.is_complete(&spec.key), "cold dir has no artifact");
        let report = rundir.run_recorded(&spec).unwrap();
        assert_eq!(
            report,
            system.try_run(&Placement::identity(), &plan).unwrap()
        );
        assert!(rundir.is_complete(&spec.key));
        assert_eq!(rundir.stats().written, 1);

        let dir = rundir.entry_dir(&spec.key);
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.packets, report.packets);
        assert_eq!(manifest.events, report.metrics.events);
        assert_eq!(manifest.pattern, "mem-get");
        assert_eq!(
            manifest.aggregate_gbps.to_bits(),
            report.aggregate_gbps.to_bits()
        );
        let store = TraceStore::open(&dir.join(TRACE_FILE)).unwrap();
        assert_eq!(store.totals().delivered, report.packets);
        assert_eq!(
            format!("{:016x}", store.totals().packets),
            format!("{:016x}", manifest.packets)
        );

        // Removing the trace file de-completes the entry; re-recording
        // heals it with byte-identical artifacts.
        let before_trace = fs::read(dir.join(TRACE_FILE)).unwrap();
        let before_manifest = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        fs::remove_file(dir.join(TRACE_FILE)).unwrap();
        assert!(!rundir.is_complete(&spec.key));
        let _ = rundir.run_recorded(&spec).unwrap();
        assert!(rundir.is_complete(&spec.key));
        assert_eq!(fs::read(dir.join(TRACE_FILE)).unwrap(), before_trace);
        assert_eq!(fs::read(dir.join(MANIFEST_FILE)).unwrap(), before_manifest);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn chrome_export_is_a_projection_of_the_store() {
        let plan = TransferPlan::builder()
            .get_from_memory(0, 16 << 10, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let (report, bytes) = record_to_vec(&plan);
        let store = TraceStore::from_bytes(bytes).unwrap();
        let mut out = Vec::new();
        store
            .export_chrome(&MachineClock::default(), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"traceEvents\":[\n"));
        assert!(text.ends_with("\n]}\n"));
        assert!(text.contains("\"args\":{\"name\":\"EIB rings\"}"));
        let delivers = text.matches("\"name\":\"deliver\"").count() as u64;
        assert_eq!(delivers, report.packets);
    }
}
