//! Wall-clock throughput snapshots and wide-band performance gating.
//!
//! A [`PerfBaseline`] is the digest `repro --perf-baseline-out` writes
//! (committed as `BENCH_perf.json`) and `repro --perf-check` compares
//! against: for every figure that exercises the DMA fabric, the
//! deterministic work counters (events processed, bus packets, simulated
//! cycles) and the wall-clock seconds the figure's sweep took on the
//! recording host.
//!
//! The gate is deliberately asymmetric. The work counters are
//! deterministic — a change in any of them means the *model* changed and
//! the wall-clock numbers are no longer comparable, so they are compared
//! exactly. The throughput (events per wall second) is host-dependent
//! noise-prone, so it is gated one-sided with a wide relative band:
//! a regression beyond `band` fails, any speedup passes. A failed check
//! on a faster machine is impossible by construction; a failed check on
//! the recording machine means the event core genuinely got slower.
//!
//! Perf collection never shares an executor between figures and never
//! uses the disk cache: every run is computed from scratch so the
//! recorded seconds measure the simulator, not the cache.
//!
//! Intentional slowdowns (or a new reference host) are re-baselined by
//! regenerating the file with `--perf-baseline-out` and committing it
//! alongside the change.

use std::fmt;
use std::time::Instant;

use crate::baseline::Drift;
use crate::exec::SweepExecutor;
use crate::experiments::{self, ExperimentConfig, ExperimentError};
use crate::json::{self, JsonValue};
use crate::CellSystem;

/// Format version of the perf file; bumped on schema changes.
pub const PERF_VERSION: u64 = 1;

/// Relative regression band recorded when `--perf-band` is not given:
/// 50 %. Wall clocks on shared CI runners jitter by tens of percent;
/// the band only needs to catch algorithmic regressions (which move
/// throughput by integer factors), not tuning-level noise.
pub const DEFAULT_PERF_BAND: f64 = 0.5;

/// The figures a perf snapshot times: exactly those whose sweeps
/// exercise the DMA fabric (the ones
/// [`experiments::figure_metrics_with`] returns a summary for).
pub const PERF_FIGURES: &[&str] = &["8", "10", "12", "13", "15", "16"];

/// The timed digest of one figure's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFigure {
    /// Figure id ("8", "10", …).
    pub id: String,
    /// Kernel events processed across the figure's runs (deterministic).
    pub events: u64,
    /// Bus packets retired across the figure's runs (deterministic).
    pub packets: u64,
    /// Simulated bus cycles across the figure's runs (deterministic).
    pub sim_cycles: u64,
    /// Wall-clock seconds the sweep took, rounded to the file's
    /// 6-decimal precision.
    pub wall_seconds: f64,
}

impl PerfFigure {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }

    /// Bus packets retired per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }

    /// Simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }
}

/// A committed throughput snapshot: what `--perf-check` gates against.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// One-sided relative regression band recorded at collection time
    /// (e.g. `0.5` = fail below half the recorded throughput);
    /// `--perf-band` overrides it at check time.
    pub band: f64,
    /// Worker threads the snapshot was timed with; `--perf-check`
    /// re-runs with the same count so wall clocks compare.
    pub jobs: usize,
    /// The experiment protocol the snapshot covers; `--perf-check`
    /// re-runs exactly this.
    pub experiment: ExperimentConfig,
    /// Per-figure timed digests, in [`PERF_FIGURES`] order.
    pub figures: Vec<PerfFigure>,
}

/// Why a perf file could not be read.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfError {
    /// What is wrong, with the JSON path that broke.
    pub message: String,
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid perf baseline: {}", self.message)
    }
}

impl std::error::Error for PerfError {}

fn bad(message: impl Into<String>) -> PerfError {
    PerfError {
        message: message.into(),
    }
}

/// Rounds through the file's 6-decimal representation so collected and
/// re-parsed values compare bit-identically.
fn round6(x: f64) -> f64 {
    format!("{x:.6}")
        .parse()
        .expect("formatted float re-parses")
}

impl PerfBaseline {
    /// Times every fabric figure of `cfg` with `jobs` workers and
    /// digests the result. Each figure gets a fresh, cache-free
    /// executor so the recorded seconds measure real computation and
    /// figures do not share deduplicated runs.
    ///
    /// # Errors
    ///
    /// The first [`ExperimentError`] any figure reports.
    pub fn collect(
        jobs: usize,
        system: &CellSystem,
        cfg: &ExperimentConfig,
        band: f64,
    ) -> Result<PerfBaseline, ExperimentError> {
        let mut figures = Vec::with_capacity(PERF_FIGURES.len());
        for id in PERF_FIGURES {
            let exec = SweepExecutor::new(jobs);
            let start = Instant::now();
            let summary = experiments::figure_metrics_with(&exec, system, cfg, id)?
                .expect("PERF_FIGURES lists only fabric figures");
            let wall = start.elapsed().as_secs_f64();
            figures.push(PerfFigure {
                id: (*id).to_string(),
                events: summary.events,
                packets: summary.packets,
                sim_cycles: summary.run_cycles,
                wall_seconds: round6(wall),
            });
        }
        Ok(PerfBaseline {
            band,
            jobs,
            experiment: cfg.clone(),
            figures,
        })
    }

    /// Total events per wall second over every figure — the headline
    /// throughput number the CI smoke step logs.
    pub fn total_events_per_sec(&self) -> f64 {
        let events: u64 = self.figures.iter().map(|f| f.events).sum();
        let wall: f64 = self.figures.iter().map(|f| f.wall_seconds).sum();
        events as f64 / wall.max(f64::MIN_POSITIVE)
    }

    /// Compares `current` (freshly collected) against this (recorded)
    /// snapshot.
    ///
    /// The deterministic work counters must match *exactly* — a
    /// mismatch means the model changed and the file must be
    /// regenerated, whatever the wall clocks say. Throughput is gated
    /// one-sided: a figure drifts only when its current events/sec
    /// falls below `(1 - band)` of the recorded value (`band` defaults
    /// to the recorded [`PerfBaseline::band`]); speedups never drift.
    pub fn compare(&self, current: &PerfBaseline, band: Option<f64>) -> Vec<Drift> {
        let band = band.unwrap_or(self.band);
        let mut drifts = Vec::new();
        if self.jobs != current.jobs {
            drifts.push(Drift {
                location: "perf jobs (wall clocks compare only at equal parallelism)".into(),
                baseline: self.jobs as f64,
                current: current.jobs as f64,
            });
        }
        if self.experiment != current.experiment {
            drifts.push(Drift {
                location: "perf experiment config".into(),
                baseline: 0.0,
                current: 1.0,
            });
        }
        for fig in &self.figures {
            let Some(cur) = current.figures.iter().find(|c| c.id == fig.id) else {
                drifts.push(Drift {
                    location: format!("perf figure {}: missing from current run", fig.id),
                    baseline: fig.events as f64,
                    current: 0.0,
                });
                continue;
            };
            for (what, b, c) in [
                ("events", fig.events, cur.events),
                ("packets", fig.packets, cur.packets),
                ("sim_cycles", fig.sim_cycles, cur.sim_cycles),
            ] {
                if b != c {
                    drifts.push(Drift {
                        location: format!(
                            "perf figure {} {what} (deterministic: must match exactly; \
                             re-baseline after model changes)",
                            fig.id
                        ),
                        baseline: b as f64,
                        current: c as f64,
                    });
                }
            }
            let floor = fig.events_per_sec() * (1.0 - band);
            if cur.events_per_sec() < floor {
                drifts.push(Drift {
                    location: format!(
                        "perf figure {} events/sec (regression beyond the {:.0}% band)",
                        fig.id,
                        100.0 * band
                    ),
                    baseline: fig.events_per_sec(),
                    current: cur.events_per_sec(),
                });
            }
        }
        for fig in &current.figures {
            if !self.figures.iter().any(|b| b.id == fig.id) {
                drifts.push(Drift {
                    location: format!("perf figure {}: not in baseline (re-baseline?)", fig.id),
                    baseline: 0.0,
                    current: fig.events as f64,
                });
            }
        }
        drifts
    }

    /// Serializes the snapshot as deterministic JSON (keys in fixed
    /// order, floats at 6 decimals, one line). The derived
    /// `events_per_sec` field is informational and ignored on parse.
    pub fn to_json(&self) -> String {
        let sizes: Vec<String> = self
            .experiment
            .dma_elem_sizes
            .iter()
            .map(u32::to_string)
            .collect();
        let figures: Vec<String> = self
            .figures
            .iter()
            .map(|f| {
                format!(
                    "{{\"id\":\"{}\",\"events\":{},\"packets\":{},\
                     \"sim_cycles\":{},\"wall_seconds\":{:.6},\
                     \"events_per_sec\":{:.6}}}",
                    json::escape(&f.id),
                    f.events,
                    f.packets,
                    f.sim_cycles,
                    f.wall_seconds,
                    f.events_per_sec()
                )
            })
            .collect();
        format!(
            "{{\"version\":{},\"band\":{:.6},\"jobs\":{},\
             \"experiment\":{{\"volume_per_spe\":{},\"dma_elem_sizes\":[{}],\
             \"placements\":{},\"seed\":{}}},\
             \"figures\":[{}]}}\n",
            PERF_VERSION,
            self.band,
            self.jobs,
            self.experiment.volume_per_spe,
            sizes.join(","),
            self.experiment.placements,
            self.experiment.seed,
            figures.join(",")
        )
    }

    /// Parses a perf file.
    ///
    /// # Errors
    ///
    /// [`PerfError`] naming the missing or malformed field.
    pub fn from_json(text: &str) -> Result<PerfBaseline, PerfError> {
        let doc = json::parse(text).map_err(|e| bad(e.to_string()))?;
        let version = field_u64(&doc, "version")?;
        if version != PERF_VERSION {
            return Err(bad(format!(
                "unsupported perf version {version} (expected {PERF_VERSION})"
            )));
        }
        let experiment = doc
            .get("experiment")
            .ok_or_else(|| bad("missing 'experiment'"))?;
        let sizes = experiment
            .get("dma_elem_sizes")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'experiment.dma_elem_sizes'"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("bad element size"))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let cfg = ExperimentConfig {
            volume_per_spe: field_u64(experiment, "volume_per_spe")?,
            dma_elem_sizes: sizes,
            placements: usize::try_from(field_u64(experiment, "placements")?)
                .map_err(|_| bad("placements out of range"))?,
            seed: field_u64(experiment, "seed")?,
        };
        let figures = doc
            .get("figures")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'figures'"))?
            .iter()
            .map(|f| {
                Ok(PerfFigure {
                    id: field_str(f, "id")?,
                    events: field_u64(f, "events")?,
                    packets: field_u64(f, "packets")?,
                    sim_cycles: field_u64(f, "sim_cycles")?,
                    wall_seconds: field_f64(f, "wall_seconds")?,
                })
            })
            .collect::<Result<Vec<_>, PerfError>>()?;
        Ok(PerfBaseline {
            band: field_f64(&doc, "band")?,
            jobs: usize::try_from(field_u64(&doc, "jobs")?)
                .map_err(|_| bad("jobs out of range"))?,
            experiment: cfg,
            figures,
        })
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer '{key}'")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric '{key}'")))
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfBaseline {
        PerfBaseline {
            band: 0.5,
            jobs: 1,
            experiment: ExperimentConfig::quick(),
            figures: vec![
                PerfFigure {
                    id: "8".into(),
                    events: 1_000_000,
                    packets: 50_000,
                    sim_cycles: 2_000_000,
                    wall_seconds: 2.0,
                },
                PerfFigure {
                    id: "10".into(),
                    events: 400_000,
                    packets: 20_000,
                    sim_cycles: 900_000,
                    wall_seconds: 1.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let b = sample();
        let parsed = PerfBaseline::from_json(&b.to_json()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn identical_snapshots_have_no_drift() {
        let b = sample();
        assert!(b.compare(&b.clone(), None).is_empty());
        // Even with a zero band: equal throughput is not "below" it.
        assert!(b.compare(&b.clone(), Some(0.0)).is_empty());
    }

    #[test]
    fn speedups_never_drift() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures[0].wall_seconds = 0.1; // 20x faster
        assert!(b.compare(&cur, Some(0.0)).is_empty(), "one-sided gate");
    }

    #[test]
    fn regressions_beyond_the_band_drift() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures[0].wall_seconds = 3.0; // -33%: inside a 50% band
        assert!(b.compare(&cur, None).is_empty());
        let drifts = b.compare(&cur, Some(0.1)); // outside a 10% band
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].location.contains("figure 8 events/sec"));
    }

    #[test]
    fn deterministic_counts_gate_exactly_whatever_the_band() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures[1].packets += 1;
        let drifts = b.compare(&cur, Some(f64::INFINITY));
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].location.contains("figure 10 packets"));
        assert!(drifts[0].location.contains("deterministic"));
    }

    #[test]
    fn jobs_mismatch_is_a_drift() {
        let b = sample();
        let mut cur = b.clone();
        cur.jobs = 4;
        let drifts = b.compare(&cur, None);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].location.contains("jobs"));
    }

    #[test]
    fn missing_figure_is_reported() {
        let b = sample();
        let mut cur = b.clone();
        cur.figures.remove(1);
        let drifts = b.compare(&cur, None);
        assert!(drifts
            .iter()
            .any(|d| d.location.contains("figure 10: missing")));
    }

    #[test]
    fn malformed_files_name_the_field() {
        let err = PerfBaseline::from_json("{}").unwrap_err();
        assert!(err.message.contains("version"));
        let err = PerfBaseline::from_json("not json").unwrap_err();
        assert!(err.message.contains("JSON error"));
    }

    #[test]
    fn collect_times_every_fabric_figure() {
        // A deliberately tiny protocol so this stays a unit test.
        let cfg = ExperimentConfig {
            volume_per_spe: 16 << 10,
            dma_elem_sizes: vec![4096],
            placements: 1,
            seed: 0xCE11,
        };
        let system = CellSystem::blade();
        let perf = PerfBaseline::collect(1, &system, &cfg, DEFAULT_PERF_BAND).expect("collects");
        assert_eq!(perf.figures.len(), PERF_FIGURES.len());
        for fig in &perf.figures {
            assert!(fig.events > 0, "figure {} counted no events", fig.id);
            assert!(fig.packets > 0, "figure {} counted no packets", fig.id);
            assert!(fig.sim_cycles > 0, "figure {} ran no cycles", fig.id);
            assert!(fig.wall_seconds > 0.0);
        }
        assert!(perf.total_events_per_sec() > 0.0);
        // The work counters are deterministic: a second collection
        // drifts only if throughput regressed, never on the counts.
        let again = PerfBaseline::collect(1, &system, &cfg, DEFAULT_PERF_BAND).expect("collects");
        let drifts = perf.compare(&again, Some(f64::INFINITY));
        assert!(
            drifts.is_empty(),
            "deterministic counter drifted: {drifts:?}"
        );
    }
}
