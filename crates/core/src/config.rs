//! Machine configuration and the top-level [`CellSystem`] handle.

use std::sync::Arc;

use cellsim_eib::EibConfig;
use cellsim_faults::FaultPlan;
use cellsim_kernel::MachineClock;
use cellsim_mem::{BankConfig, NumaPolicy};
use cellsim_mfc::MfcConfig;
use cellsim_ppe::{PpeConfig, PpeModel};
use cellsim_spe::{SpuLsConfig, SpuLsModel};

use crate::data::MachineState;
use crate::fabric::{self, FabricReport};
use crate::failure::RunFailure;
use crate::placement::Placement;
use crate::plan::TransferPlan;
use crate::tracing::{FabricTrace, TraceSink};

/// Every tunable of the simulated blade in one place.
///
/// The defaults reproduce the ISPASS 2007 machine: a 2.1 GHz CBE with the
/// bus at half speed, four EIB rings, 16-entry MFC queues with an
/// 8-packet outstanding budget, a 16.8 GB/s local XDR bank and a 7 GB/s
/// remote bank, and round-robin NUMA region placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfig {
    /// CPU/bus frequencies.
    pub clock: MachineClock,
    /// Element Interconnect Bus structure.
    pub eib: EibConfig,
    /// Cycles between command-bus starts (1 = full rate).
    pub cmd_issue_interval: u64,
    /// Command-bus snoop latency in bus cycles.
    pub cmd_latency: u64,
    /// Per-SPE MFC structure.
    pub mfc: MfcConfig,
    /// Local XDR bank behind the MIC.
    pub local_bank: BankConfig,
    /// Remote bank behind IOIF0.
    pub remote_bank: BankConfig,
    /// How regions map onto banks.
    pub numa: NumaPolicy,
    /// Local-Store-side service latency for LS↔LS packets (bus cycles).
    pub ls_access_latency: u64,
    /// SPU cost of enqueuing one MFC command (bus cycles).
    pub enqueue_cost: u64,
    /// PPE pipeline structure (used by the PPE experiments).
    pub ppe: PpeConfig,
    /// SPU↔LS pipeline costs (used by the §4.2.2 experiment).
    pub spu_ls: SpuLsConfig,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            clock: MachineClock::default(),
            eib: EibConfig::default(),
            cmd_issue_interval: 1,
            cmd_latency: 10,
            mfc: MfcConfig::default(),
            local_bank: BankConfig::local_xdr(),
            remote_bank: BankConfig::remote_xdr(),
            numa: NumaPolicy::default(),
            ls_access_latency: 2,
            enqueue_cost: 2,
            ppe: PpeConfig::default(),
            spu_ls: SpuLsConfig::default(),
        }
    }
}

/// A configured Cell blade, ready to run transfer plans and kernels.
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone, Default)]
pub struct CellSystem {
    config: CellConfig,
    /// Installed fault plan. `None` (and an installed *empty* plan, which
    /// [`CellSystem::with_faults`] normalizes away) means the healthy
    /// fabric runs with zero fault-layer overhead. Kept off [`CellConfig`]
    /// so machine fingerprints and persisted baselines are unaffected;
    /// the plan contributes to cache identity via
    /// [`CellSystem::faults_fingerprint`].
    faults: Option<Arc<FaultPlan>>,
}

impl CellSystem {
    /// The paper's blade with all defaults.
    pub fn blade() -> CellSystem {
        CellSystem::default()
    }

    /// A blade with an explicit configuration.
    pub fn new(config: CellConfig) -> CellSystem {
        CellSystem {
            config,
            faults: None,
        }
    }

    /// The PS3-style 7-SPE machine: the paper's blade with one SPE fused
    /// off (physical SPE 7), as shipped in every PlayStation 3 console
    /// for yield. Run plans on it with a placement that avoids the fused
    /// SPE, e.g. [`Placement::lottery_avoiding`](crate::Placement).
    pub fn ps3() -> CellSystem {
        CellSystem::blade().with_faults(FaultPlan {
            fused_spes: vec![7],
            ..FaultPlan::default()
        })
    }

    /// Returns this machine with `plan` installed. An empty plan is
    /// normalized to no plan, so a zero-fault plan is *behaviourally and
    /// cache-identically* the healthy machine.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> CellSystem {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(Arc::new(plan))
        };
        self
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Cache identity of the installed fault plan: its canonical-JSON
    /// fingerprint, 0 when healthy (no plan or an empty one).
    pub fn faults_fingerprint(&self) -> u64 {
        self.faults.as_ref().map_or(0, |p| p.fingerprint())
    }

    /// The machine configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// Runs a DMA transfer plan under `placement` and reports bandwidths.
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] when the fabric deadlocks, livelocks, or
    /// exceeds its safety horizon; the diagnosis snapshots the stuck
    /// machine (per-SPE queues, in-flight packets by phase, retry
    /// counters). Plans are validated at construction, so a stall
    /// indicates a pathological configuration or a simulator bug — but it
    /// is reported, not a process abort.
    pub fn try_run(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
    ) -> Result<FabricReport, RunFailure> {
        fabric::run_plan(&self.config, self.faults(), placement, plan, None)
    }

    /// Runs a plan *and moves real bytes*: every delivered packet copies
    /// its payload between `state`'s main memory and Local Stores, in
    /// delivery order. Timing is identical to [`CellSystem::try_run`].
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] under the same conditions as
    /// [`CellSystem::try_run`]. On failure `state` holds the payloads
    /// delivered before the stall.
    pub fn try_run_with_data(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
        state: &mut MachineState,
    ) -> Result<FabricReport, RunFailure> {
        fabric::run_plan(&self.config, self.faults(), placement, plan, Some(state))
    }

    /// Runs a plan while recording a [`FabricTrace`] of every packet
    /// phase, for post-hoc analysis (throughput timelines, ring shares,
    /// hop statistics). Timing is identical to [`CellSystem::try_run`].
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] under the same conditions as
    /// [`CellSystem::try_run`]; the partial trace is dropped.
    pub fn try_run_traced(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
    ) -> Result<(FabricReport, FabricTrace), RunFailure> {
        let mut trace = FabricTrace::new();
        let report = fabric::run_plan_traced(
            &self.config,
            self.faults(),
            placement,
            plan,
            None,
            Some(&mut trace),
        )?;
        Ok((report, trace))
    }

    /// Like [`CellSystem::try_run_traced`], but with an explicit
    /// trace-buffer capacity. The default capacity overflows at paper
    /// scale (a `--full` run generates ~8M events); a complete trace
    /// needs room for up to four phases per bus packet.
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] under the same conditions as
    /// [`CellSystem::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn try_run_traced_with_capacity(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
        capacity: usize,
    ) -> Result<(FabricReport, FabricTrace), RunFailure> {
        let mut trace = FabricTrace::with_capacity(capacity);
        let report = fabric::run_plan_traced(
            &self.config,
            self.faults(),
            placement,
            plan,
            None,
            Some(&mut trace),
        )?;
        Ok((report, trace))
    }

    /// Runs a plan streaming every packet-phase event into `sink` — the
    /// unbounded-trace entry point behind the persistent trace store
    /// ([`crate::tracestore`]). Timing is identical to
    /// [`CellSystem::try_run`]: sinks observe the simulation, they never
    /// perturb it.
    ///
    /// # Errors
    ///
    /// [`RunFailure::Stall`] under the same conditions as
    /// [`CellSystem::try_run`]; whatever the sink already consumed is the
    /// caller's to discard.
    pub fn try_run_with_sink(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
        sink: &mut dyn TraceSink,
    ) -> Result<FabricReport, RunFailure> {
        fabric::run_plan_traced(
            &self.config,
            self.faults(),
            placement,
            plan,
            None,
            Some(sink),
        )
    }

    /// Deprecated panicking form of [`CellSystem::try_run`].
    ///
    /// # Panics
    ///
    /// Panics with the full stall diagnosis if the fabric stalls.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_run`, which reports stalls as values"
    )]
    pub fn run(&self, placement: &Placement, plan: &TransferPlan) -> FabricReport {
        self.try_run(placement, plan)
            .unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Deprecated panicking form of [`CellSystem::try_run_with_data`].
    ///
    /// # Panics
    ///
    /// Panics with the full stall diagnosis if the fabric stalls.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_run_with_data`, which reports stalls as values"
    )]
    pub fn run_with_data(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
        state: &mut MachineState,
    ) -> FabricReport {
        self.try_run_with_data(placement, plan, state)
            .unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Deprecated panicking form of [`CellSystem::try_run_traced`].
    ///
    /// # Panics
    ///
    /// Panics with the full stall diagnosis if the fabric stalls.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_run_traced`, which reports stalls as values"
    )]
    pub fn run_traced(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
    ) -> (FabricReport, FabricTrace) {
        self.try_run_traced(placement, plan)
            .unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Deprecated panicking form of
    /// [`CellSystem::try_run_traced_with_capacity`].
    ///
    /// # Panics
    ///
    /// Panics with the full stall diagnosis if the fabric stalls, or if
    /// `capacity` is zero.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_run_traced_with_capacity`, which reports stalls as values"
    )]
    pub fn run_traced_with_capacity(
        &self,
        placement: &Placement,
        plan: &TransferPlan,
        capacity: usize,
    ) -> (FabricReport, FabricTrace) {
        self.try_run_traced_with_capacity(placement, plan, capacity)
            .unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// The PPE pipeline model configured for this machine.
    pub fn ppe_model(&self) -> PpeModel {
        PpeModel::new(self.config.ppe, self.config.clock)
    }

    /// The SPU↔Local-Store model configured for this machine.
    pub fn spu_ls_model(&self) -> SpuLsModel {
        SpuLsModel::new(self.config.spu_ls)
    }
}
