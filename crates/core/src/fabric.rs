//! The full-machine discrete-event simulation binding MFCs, EIB and
//! memory together.
//!
//! Every DMA command is unrolled by its MFC into ≤128-byte bus packets.
//! Each packet's life is:
//!
//! 1. **Command phase** — a slot on the global command bus plus the snoop
//!    latency.
//! 2. **Source ready** — a DRAM read (GETs from memory), a bank-acceptance
//!    check (PUTs to memory, which stall under write backpressure), or a
//!    short Local-Store access (LS↔LS traffic).
//! 3. **Data phase** — the EIB data arbiter grants a ring whose path
//!    segments and end-point ports are free.
//! 4. **Delivery** — payload arrives; the MFC retires the packet, freeing
//!    an outstanding-budget slot, and (for memory PUTs) the DRAM write is
//!    enqueued.

use std::collections::VecDeque;

use cellsim_eib::{CommandBus, Eib, EibStats, Element, FlowClass, Topology, TransferRequest};
use cellsim_faults::FaultPlan;
use cellsim_kernel::{Cycle, Model, Scheduler, Simulation};
use cellsim_mem::{BankId, MemorySystem, Op};
use cellsim_mfc::{
    DmaKind, EffectiveAddr, Issue, LsAddr, MfcEngine, NackVerdict, PacketOut, PacketToken,
};

use crate::config::CellConfig;
use crate::data::MachineState;
use crate::failure::{PacketPhase, RunFailure, SpeStall, StallDiagnosis, StallKind};
use crate::latency::{DmaPathClass, LatencyMetrics};
use crate::metrics::{BankMetrics, FabricMetrics, FaultStats, SpeMetrics};
use crate::placement::Placement;
use crate::plan::{Planned, SyncPolicy, TransferPlan};
use crate::tracing::{FabricEvent, TraceMeta, TraceSink};
use cellsim_kernel::RunOutcome;

/// Safety horizon: a fabric run that has not completed by this many bus
/// cycles is stalled and returns [`RunFailure::Stall`].
const MAX_CYCLES: u64 = 50_000_000_000;

/// Livelock bound: this many consecutive events without simulated time
/// advancing is a zero-delay event storm, not progress.
const MAX_STAGNANT_EVENTS: u64 = 10_000_000;

/// Measured outcome of one transfer plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Bus cycles until the last payload byte was delivered.
    pub cycles: u64,
    /// Total payload bytes delivered (all SPEs, both directions).
    pub total_bytes: u64,
    /// Total bytes over the whole run's wall-clock, in GB/s.
    pub aggregate_gbps: f64,
    /// Sum of the per-SPE bandwidths, each measured over that SPE's own
    /// completion time — the paper's weak-scaling accounting, where every
    /// SPE times its own fixed-size transfer.
    pub sum_gbps: f64,
    /// Per-logical-SPE bytes delivered.
    pub per_spe_bytes: Vec<u64>,
    /// Per-logical-SPE completion time (cycle of its last delivery).
    pub per_spe_cycles: Vec<u64>,
    /// Per-logical-SPE bandwidth over that SPE's own completion time.
    pub per_spe_gbps: Vec<f64>,
    /// EIB occupancy counters.
    pub eib: EibStats,
    /// Bus packets moved.
    pub packets: u64,
    /// Always-on cycle accounting: per-SPE stall breakdown, per-ring and
    /// per-bank occupancy, MFC outstanding-slot histogram.
    pub metrics: FabricMetrics,
    /// Per-command latency digest: end-to-end log2 histograms per DMA
    /// path with phase attribution (queue/slot/ring/service), folded in
    /// at each command's retirement. Deterministic and `PartialEq`, so
    /// the sweep executor's serial/parallel/cached equivalence covers it.
    pub latency: LatencyMetrics,
}

/// Events of the fabric simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Feed and fire one SPE's MFC.
    Pump(usize),
    /// Command bus phase finished for a packet.
    CmdDone(u32),
    /// Packet's source data is available; request the data bus.
    SrcReady(u32),
    /// Re-check memory write acceptance for a backpressured PUT.
    MemRetry(u32),
    /// Re-attempt a NACKed bank access after its backoff elapsed.
    NackRetry(u32),
    /// Re-run data arbitration.
    EibKick,
    /// Packet payload arrived at its destination.
    Delivered(u32),
    /// A memory PUT's DRAM write retired; the MFC slot frees now.
    Retired(u32),
}

#[derive(Debug, Clone, Copy)]
struct PacketInfo {
    spe: usize,
    token: PacketToken,
    kind: DmaKind,
    bytes: u32,
    ls: LsAddr,
    ea: EffectiveAddr,
    src: Element,
    dst: Element,
    class: FlowClass,
    bank: Option<BankId>,
    /// Currently refused by the bank's backlog horizon (stall accounting).
    waiting_mem: bool,
    /// Lifecycle position, kept current at every transition so a stall
    /// diagnosis can count in-flight packets per phase.
    phase: PacketPhase,
}

/// What an SPE is doing right now, for the stall-cycle partition. Exactly
/// one state holds at a time; cycles are charged to the state that held
/// them, so the six counters sum to the run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpeState {
    /// No queued commands, nothing in flight (before start / after done).
    Idle,
    /// Work available and the MFC can make progress.
    Busy,
    /// Blocked on a tag-group sync.
    StallSync,
    /// Outstanding budget exhausted; everything in flight is on the wire
    /// or in DRAM (latency-limited — the Little's-law ceiling).
    StallMfcFull,
    /// Outstanding budget exhausted with packets queued at the EIB
    /// arbiter (ring contention).
    StallEib,
    /// Outstanding budget exhausted with a PUT refused by a bank's
    /// backlog horizon (write backpressure).
    StallMem,
}

impl SpeState {
    /// Stable kebab-case name (the stall-diagnosis `state` field).
    fn name(self) -> &'static str {
        match self {
            SpeState::Idle => "idle",
            SpeState::Busy => "busy",
            SpeState::StallSync => "stall-sync",
            SpeState::StallMfcFull => "stall-mfc-full",
            SpeState::StallEib => "stall-eib",
            SpeState::StallMem => "stall-mem",
        }
    }
}

struct SpeCtx {
    mfc: MfcEngine,
    commands: VecDeque<Planned>,
    sync: SyncPolicy,
    issued_since_sync: u32,
    waiting_sync: bool,
    enqueue_ready: Cycle,
    pump_scheduled: Option<Cycle>,
    bytes: u64,
    last_delivery: Cycle,
    state: SpeState,
    /// Cycle since which `state` has held.
    state_since: Cycle,
    /// This SPE's packets queued at the EIB data arbiter.
    pkts_waiting_eib: u32,
    /// This SPE's PUT packets refused by a bank's backlog horizon.
    pkts_waiting_mem: u32,
    /// Accumulated stall partition (occupancy filled in at run end).
    stalls: SpeMetrics,
}

impl SpeCtx {
    /// The current state, by descending blocking priority: a sync wait
    /// trumps a full outstanding budget, whose cause is read off the
    /// waiting-packet counters.
    fn classify(&self) -> SpeState {
        if self.commands.is_empty() && self.mfc.is_idle() {
            return SpeState::Idle;
        }
        if self.waiting_sync {
            return SpeState::StallSync;
        }
        // `slot_budget` is the configured budget unless a fault plan
        // installed a tighter slot limit.
        if self.mfc.outstanding() >= self.mfc.slot_budget() {
            if self.pkts_waiting_mem > 0 {
                return SpeState::StallMem;
            }
            if self.pkts_waiting_eib > 0 {
                return SpeState::StallEib;
            }
            return SpeState::StallMfcFull;
        }
        SpeState::Busy
    }

    /// Charges `dt` cycles to the current state.
    fn charge(&mut self, dt: u64) {
        let counter = match self.state {
            SpeState::Idle => &mut self.stalls.idle_cycles,
            SpeState::Busy => &mut self.stalls.busy_cycles,
            SpeState::StallSync => &mut self.stalls.stall_sync_cycles,
            SpeState::StallMfcFull => &mut self.stalls.stall_mfc_full_cycles,
            SpeState::StallEib => &mut self.stalls.stall_eib_cycles,
            SpeState::StallMem => &mut self.stalls.stall_mem_cycles,
        };
        *counter += dt;
    }
}

struct Fabric<'d> {
    eib: Eib,
    cmdbus: CommandBus,
    mem: MemorySystem,
    placement: Placement,
    spes: Vec<SpeCtx>,
    /// Packet slab: retired entries go on `free_slots` and are reused, so
    /// the live footprint is bounded by the machine's outstanding budget
    /// instead of growing for the whole run.
    packets: Vec<PacketInfo>,
    free_slots: Vec<u32>,
    /// High-water mark of simultaneously live slab entries.
    peak_live_packets: u64,
    /// Stale `Ev::Pump` firings skipped because an earlier pump for the
    /// same SPE had already run (see [`Fabric::schedule_pump`]).
    suppressed_pumps: u64,
    kick_scheduled: Option<Cycle>,
    delivered_packets: u64,
    /// NACK/retry tallies (all-zero without an active fault plan).
    fault_stats: FaultStats,
    /// Per-command latency digest, folded in at retirement.
    latency: LatencyMetrics,
    /// Optional functional storage: when present, every delivered packet
    /// copies real bytes.
    data: Option<&'d mut MachineState>,
    /// Optional event sink (in-memory trace or streaming store writer).
    trace: Option<&'d mut (dyn TraceSink + 'd)>,
}

/// The sink metadata every trace point carries: the initiating logical
/// SPE and the packet's DMA path class, both read off the packet record.
fn trace_meta(info: &PacketInfo) -> TraceMeta {
    let path = match (info.kind, info.bank.is_some()) {
        (DmaKind::Get, true) => DmaPathClass::MemGet,
        (DmaKind::Put, true) => DmaPathClass::MemPut,
        (DmaKind::Get, false) => DmaPathClass::LsGet,
        (DmaKind::Put, false) => DmaPathClass::LsPut,
    };
    TraceMeta {
        spe: u8::try_from(info.spe).expect("logical SPE index fits u8"),
        path,
    }
}

/// Copies a delivered packet's payload through the functional storage.
fn apply_payload(data: &mut MachineState, info: &PacketInfo) {
    let n = info.bytes as usize;
    match (info.kind, info.ea) {
        (DmaKind::Get, EffectiveAddr::Memory { region, offset }) => {
            let bytes = data.read_region(region, offset, n);
            data.local_store_mut(info.spe).write(info.ls.0, &bytes);
        }
        (
            DmaKind::Get,
            EffectiveAddr::LocalStore {
                spe: target,
                offset,
            },
        ) => {
            let bytes = data
                .local_store(usize::from(target))
                .read(offset, n)
                .to_vec();
            data.local_store_mut(info.spe).write(info.ls.0, &bytes);
        }
        (DmaKind::Put, EffectiveAddr::Memory { region, offset }) => {
            let bytes = data.local_store(info.spe).read(info.ls.0, n).to_vec();
            data.write_region(region, offset, &bytes);
        }
        (
            DmaKind::Put,
            EffectiveAddr::LocalStore {
                spe: target,
                offset,
            },
        ) => {
            let bytes = data.local_store(info.spe).read(info.ls.0, n).to_vec();
            data.local_store_mut(usize::from(target))
                .write(offset, &bytes);
        }
    }
}

impl Fabric<'_> {
    fn spe_element(&self, logical: usize) -> Element {
        Element::spe(self.placement.physical(logical))
    }

    fn bank_element(bank: BankId) -> Element {
        match bank {
            BankId::Local => Element::Mic,
            BankId::Remote => Element::Ioif0,
        }
    }

    /// Re-evaluates an SPE's state and charges the elapsed interval to the
    /// state that just ended. Idle→Idle is a no-op: stray wakeups after an
    /// SPE completed must not extend its idle span past the run end (the
    /// final interval is flushed once, at run end).
    fn note_spe_state(&mut self, spe: usize, now: Cycle) {
        let ctx = &mut self.spes[spe];
        let new = ctx.classify();
        if ctx.state == SpeState::Idle && new == SpeState::Idle {
            return;
        }
        let dt = now.saturating_since(ctx.state_since);
        ctx.charge(dt);
        ctx.state = new;
        ctx.state_since = ctx.state_since.max(now);
    }

    fn schedule_pump(&mut self, spe: usize, at: Cycle, sched: &mut Scheduler<Ev>) {
        let slot = &mut self.spes[spe].pump_scheduled;
        if slot.is_none_or(|t| at < t) {
            *slot = Some(at);
            sched.schedule(at, Ev::Pump(spe));
        }
    }

    fn pump(&mut self, spe: usize, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        // Feed queued commands into the MFC, honouring the sync policy.
        loop {
            let ctx = &mut self.spes[spe];
            if ctx.waiting_sync {
                if ctx.mfc.tags().any_pending() {
                    break; // re-pumped on the next delivery
                }
                ctx.waiting_sync = false;
                ctx.issued_since_sync = 0;
            }
            if ctx.commands.is_empty() || !ctx.mfc.has_space() {
                break;
            }
            if ctx.enqueue_ready > now {
                let at = ctx.enqueue_ready;
                self.schedule_pump(spe, at, sched);
                break;
            }
            let cmd = ctx.commands.pop_front().expect("checked non-empty");
            let result = match cmd {
                Planned::Elem(c) => ctx.mfc.enqueue(now, c),
                Planned::List(l) => ctx.mfc.enqueue_list(now, l),
            };
            result.expect("plan-validated command rejected by MFC");
            ctx.enqueue_ready = now + cfg.enqueue_cost;
            ctx.issued_since_sync += 1;
            if let SyncPolicy::Every(k) = ctx.sync {
                if ctx.issued_since_sync >= k {
                    ctx.waiting_sync = true;
                }
            }
        }
        // Fire packets until the MFC stalls or blocks.
        loop {
            match self.spes[spe].mfc.try_issue(now) {
                Issue::Packet(p) => self.start_packet(spe, p, now, sched),
                Issue::Stalled { retry_at } => {
                    self.schedule_pump(spe, retry_at, sched);
                    break;
                }
                Issue::Blocked | Issue::Idle => break,
            }
        }
        self.note_spe_state(spe, now);
    }

    fn start_packet(&mut self, spe: usize, p: PacketOut, now: Cycle, sched: &mut Scheduler<Ev>) {
        let me = self.spe_element(spe);
        let (src, dst, class, bank) = match p.ea {
            EffectiveAddr::Memory { region, offset } => {
                let bank = self.mem.bank_for(region, offset);
                let elem = Self::bank_element(bank);
                match p.kind {
                    DmaKind::Get => (elem, me, FlowClass::MemRead, Some(bank)),
                    DmaKind::Put => (me, elem, FlowClass::MfcOut, Some(bank)),
                }
            }
            EffectiveAddr::LocalStore { spe: target, .. } => {
                let telem = self.spe_element(usize::from(target));
                match p.kind {
                    // A get's data is read out of the *target's* LS.
                    DmaKind::Get => (telem, me, FlowClass::LsRead, None),
                    DmaKind::Put => (me, telem, FlowClass::MfcOut, None),
                }
            }
        };
        let info = PacketInfo {
            spe,
            token: p.token,
            kind: p.kind,
            bytes: p.bytes,
            ls: p.ls,
            ea: p.ea,
            src,
            dst,
            class,
            bank,
            waiting_mem: false,
            phase: PacketPhase::Command,
        };
        let id = match self.free_slots.pop() {
            Some(id) => {
                self.packets[id as usize] = info;
                id
            }
            None => {
                let id = u32::try_from(self.packets.len()).expect("packet id fits u32");
                self.packets.push(info);
                id
            }
        };
        let live = (self.packets.len() - self.free_slots.len()) as u64;
        self.peak_live_packets = self.peak_live_packets.max(live);
        let cmd_done = self.cmdbus.issue(now);
        if let Some(t) = self.trace.as_mut() {
            t.record(now, trace_meta(&info), FabricEvent::CommandIssued { spe });
        }
        sched.schedule(cmd_done, Ev::CmdDone(id));
    }

    fn on_cmd_done(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        let info = self.packets[id as usize];
        match (info.kind, info.bank) {
            (DmaKind::Get, Some(_)) => self.try_get_from_memory(id, now, sched, cfg),
            (DmaKind::Put, Some(_)) => self.try_put_to_memory(id, now, sched),
            // LS↔LS: a short Local-Store access at the data source.
            (_, None) => {
                self.packets[id as usize].phase = PacketPhase::SourceWait;
                sched.schedule(now + cfg.ls_access_latency, Ev::SrcReady(id));
            }
        }
    }

    /// Submits a GET's DRAM read. Under an active fault plan the bank may
    /// transiently NACK instead, in which case the packet backs off and
    /// this re-runs at the retry time (or the packet is abandoned once
    /// its command's retry budget is spent).
    fn try_get_from_memory(
        &mut self,
        id: u32,
        now: Cycle,
        sched: &mut Scheduler<Ev>,
        cfg: &CellConfig,
    ) {
        let info = self.packets[id as usize];
        let bank = info.bank.expect("memory get has a bank");
        self.packets[id as usize].phase = PacketPhase::SourceWait;
        if self.mem.nack_roll(bank) {
            self.on_nack(id, now, sched, cfg);
            return;
        }
        let access = self.mem.submit(now, bank, Op::Read, info.bytes);
        self.spes[info.spe]
            .mfc
            .note_bank_service(info.token, access.service_cycles());
        if let Some(t) = self.trace.as_mut() {
            t.record(
                now,
                trace_meta(&info),
                FabricEvent::MemoryAccess {
                    bank,
                    bytes: info.bytes,
                },
            );
        }
        sched.schedule(access.data_ready, Ev::SrcReady(id));
    }

    /// Answers a bank NACK: count it, then either schedule the backoff
    /// retry the MFC granted or abandon the packet (budget exhausted —
    /// the typed `DmaError::RetriesExhausted` surfaces through the
    /// command's lifecycle record and the run's `FaultStats`).
    fn on_nack(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        let info = self.packets[id as usize];
        self.fault_stats.nacks += 1;
        match self.spes[info.spe].mfc.note_nack(now, info.token) {
            NackVerdict::Retry { at, .. } => {
                self.fault_stats.retries += 1;
                sched.schedule(at, Ev::NackRetry(id));
            }
            NackVerdict::Exhausted(_) => {
                self.fault_stats.retries_exhausted += 1;
                self.abandon(id, now, sched, cfg);
            }
        }
    }

    /// Gives up on a packet whose retry budget ran out: the outstanding
    /// slot and queue entry drain exactly as on delivery, but no payload
    /// bytes are credited and the command is marked exhausted.
    fn abandon(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        let info = self.packets[id as usize];
        self.packets[id as usize].phase = PacketPhase::Retired;
        self.free_slots.push(id); // no pending event references `id` now
        self.fault_stats.abandoned_packets += 1;
        let ctx = &mut self.spes[info.spe];
        let completed = ctx.mfc.packet_abandoned(now, info.token);
        ctx.last_delivery = ctx.last_delivery.max(now);
        if completed {
            let life = ctx
                .mfc
                .take_completed()
                .expect("completed command has a lifecycle record");
            self.latency.observe(&life);
            ctx.mfc.recycle(life);
        }
        self.pump(info.spe, now, sched, cfg);
    }

    fn try_put_to_memory(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>) {
        let info = self.packets[id as usize];
        let bank = info.bank.expect("memory put has a bank");
        if self.mem.can_accept(bank, now) {
            self.submit_to_eib(id, now, sched);
        } else {
            let at = self.mem.next_accept_time(bank, now).max(now + 1);
            self.packets[id as usize].phase = PacketPhase::MemWait;
            if !self.packets[id as usize].waiting_mem {
                self.packets[id as usize].waiting_mem = true;
                self.spes[info.spe].pkts_waiting_mem += 1;
                self.note_spe_state(info.spe, now);
            }
            sched.schedule(at, Ev::MemRetry(id));
        }
    }

    fn submit_to_eib(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>) {
        let info = self.packets[id as usize];
        if info.waiting_mem {
            self.packets[id as usize].waiting_mem = false;
            self.spes[info.spe].pkts_waiting_mem -= 1;
        }
        self.packets[id as usize].phase = PacketPhase::EibQueue;
        self.spes[info.spe].pkts_waiting_eib += 1;
        self.note_spe_state(info.spe, now);
        self.eib.submit(
            now,
            u64::from(id),
            TransferRequest {
                src: info.src,
                dst: info.dst,
                bytes: info.bytes,
                class: info.class,
            },
        );
        self.kick(now, sched);
    }

    fn kick(&mut self, now: Cycle, sched: &mut Scheduler<Ev>) {
        for (token, grant) in self.eib.arbitrate(now) {
            let id = u32::try_from(token).expect("token is a packet id");
            let info = self.packets[id as usize];
            self.packets[id as usize].phase = PacketPhase::OnWire;
            self.spes[info.spe].pkts_waiting_eib -= 1;
            self.spes[info.spe]
                .mfc
                .note_grant(now, info.token, grant.waited);
            let spe = info.spe;
            self.note_spe_state(spe, now);
            if let Some(t) = self.trace.as_mut() {
                t.record(
                    now,
                    trace_meta(&info),
                    FabricEvent::Granted {
                        ring: grant.ring,
                        hops: grant.hops,
                        bytes: info.bytes,
                    },
                );
            }
            sched.schedule(grant.delivered_at, Ev::Delivered(id));
        }
        if self.eib.has_pending() {
            let at = self
                .eib
                .next_release_after(now)
                .expect("pending transfers imply a future release");
            if self.kick_scheduled.is_none_or(|t| at < t || t <= now) {
                self.kick_scheduled = Some(at);
                sched.schedule(at, Ev::EibKick);
            }
        }
    }

    fn on_delivered(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        let info = self.packets[id as usize];
        if let Some(data) = self.data.as_deref_mut() {
            apply_payload(data, &info);
        }
        if info.kind == DmaKind::Put && info.bank.is_some() {
            self.put_write_to_memory(id, now, sched, cfg);
            return;
        }
        self.retire(id, now, sched, cfg);
    }

    /// Enqueues a delivered memory PUT's DRAM write. The MFC slot is held
    /// until the write retires in DRAM — this is why the paper measures
    /// PUT ≈ GET ≈ 10 GB/s for a single SPE rather than fire-and-forget
    /// write speed. Under an active fault plan the bank may transiently
    /// NACK the write; the payload then sits delivered at the bank's
    /// front-end until the backoff retry re-runs this.
    fn put_write_to_memory(
        &mut self,
        id: u32,
        now: Cycle,
        sched: &mut Scheduler<Ev>,
        cfg: &CellConfig,
    ) {
        let info = self.packets[id as usize];
        let bank = info.bank.expect("memory put has a bank");
        self.packets[id as usize].phase = PacketPhase::DramWrite;
        if self.mem.nack_roll(bank) {
            self.on_nack(id, now, sched, cfg);
            return;
        }
        let access = self.mem.submit(now, bank, Op::Write, info.bytes);
        self.spes[info.spe]
            .mfc
            .note_bank_service(info.token, access.service_cycles());
        if let Some(t) = self.trace.as_mut() {
            t.record(
                now,
                trace_meta(&info),
                FabricEvent::MemoryAccess {
                    bank,
                    bytes: info.bytes,
                },
            );
        }
        sched.schedule(access.data_ready, Ev::Retired(id));
    }

    fn retire(&mut self, id: u32, now: Cycle, sched: &mut Scheduler<Ev>, cfg: &CellConfig) {
        let info = self.packets[id as usize];
        self.packets[id as usize].phase = PacketPhase::Retired;
        self.free_slots.push(id); // no pending event references `id` now
                                  // Delivered is recorded at retirement, not wire arrival, so the
                                  // event count equals `FabricReport::packets` by construction —
                                  // a mem-PUT abandoned between delivery and its DRAM write never
                                  // produces a Delivered event, exactly as it never counts as a
                                  // delivered packet.
        if let Some(t) = self.trace.as_mut() {
            t.record(
                now,
                trace_meta(&info),
                FabricEvent::Delivered {
                    spe: info.spe,
                    bytes: info.bytes,
                },
            );
        }
        let ctx = &mut self.spes[info.spe];
        let completed = ctx.mfc.packet_delivered(now, info.token);
        ctx.bytes += u64::from(info.bytes);
        ctx.last_delivery = now;
        if completed {
            let life = ctx
                .mfc
                .take_completed()
                .expect("completed command has a lifecycle record");
            self.latency.observe(&life);
            ctx.mfc.recycle(life);
        }
        self.delivered_packets += 1;
        // An outstanding slot freed: the MFC may issue again. Enqueue-side
        // sync waits are also re-evaluated here.
        self.pump(info.spe, now, sched, cfg);
    }
}

struct FabricModel<'a, 'd> {
    fabric: Fabric<'d>,
    cfg: &'a CellConfig,
}

impl Model for FabricModel<'_, '_> {
    type Event = Ev;
    fn handle(&mut self, now: Cycle, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Pump(spe) => {
                // A pump event is genuine only if it is the one currently
                // on the books for this SPE. `schedule_pump` supersedes a
                // later pump by booking an earlier one; the later event
                // still fires but everything it would do has already been
                // done (deliveries pump directly), so it is skipped.
                if self.fabric.spes[spe].pump_scheduled == Some(now) {
                    self.fabric.spes[spe].pump_scheduled = None;
                    self.fabric.pump(spe, now, sched, self.cfg);
                } else {
                    self.fabric.suppressed_pumps += 1;
                }
            }
            Ev::CmdDone(id) => self.fabric.on_cmd_done(id, now, sched, self.cfg),
            Ev::SrcReady(id) => self.fabric.submit_to_eib(id, now, sched),
            Ev::MemRetry(id) => self.fabric.try_put_to_memory(id, now, sched),
            Ev::NackRetry(id) => match self.fabric.packets[id as usize].kind {
                DmaKind::Get => self.fabric.try_get_from_memory(id, now, sched, self.cfg),
                DmaKind::Put => self.fabric.put_write_to_memory(id, now, sched, self.cfg),
            },
            Ev::EibKick => {
                if self.fabric.kick_scheduled == Some(now) {
                    self.fabric.kick_scheduled = None;
                }
                self.fabric.kick(now, sched);
            }
            Ev::Delivered(id) => self.fabric.on_delivered(id, now, sched, self.cfg),
            Ev::Retired(id) => self.fabric.retire(id, now, sched, self.cfg),
        }
    }
}

/// Runs `plan` on the machine described by `cfg` under `placement`.
///
/// # Errors
///
/// [`RunFailure::Stall`] when the simulation walks past its safety
/// horizon, churns events without time advancing, or drains its event
/// queue with SPEs still holding work. The diagnosis snapshots the stuck
/// machine; no partial report is produced.
pub(crate) fn run_plan(
    cfg: &CellConfig,
    faults: Option<&FaultPlan>,
    placement: &Placement,
    plan: &TransferPlan,
    data: Option<&mut MachineState>,
) -> Result<FabricReport, RunFailure> {
    run_plan_traced(cfg, faults, placement, plan, data, None)
}

pub(crate) fn run_plan_traced<'d>(
    cfg: &CellConfig,
    faults: Option<&FaultPlan>,
    placement: &Placement,
    plan: &TransferPlan,
    data: Option<&'d mut MachineState>,
    trace: Option<&'d mut (dyn TraceSink + 'd)>,
) -> Result<FabricReport, RunFailure> {
    // A fused-off SPE has no functioning MFC: driving one is a harness
    // bug, caught here rather than surfacing as nonsense bandwidth.
    if let Some(fp) = faults {
        for spe in plan.active_spes() {
            let phys = placement.physical(spe);
            assert!(
                !fp.fused_spes.contains(&phys),
                "plan drives logical SPE {spe}, mapped to fused-off physical SPE {phys}"
            );
        }
    }
    let spes = plan
        .scripts()
        .iter()
        .map(|script| {
            let mut ctx = SpeCtx {
                mfc: match faults {
                    Some(fp) => MfcEngine::with_faults(cfg.mfc, fp.mfc.clone(), fp.retry),
                    None => MfcEngine::new(cfg.mfc),
                }
                .expect("invalid MFC configuration"),
                commands: script.commands().iter().cloned().collect(),
                sync: script.sync(),
                issued_since_sync: 0,
                waiting_sync: false,
                enqueue_ready: Cycle::ZERO,
                pump_scheduled: None,
                bytes: 0,
                last_delivery: Cycle::ZERO,
                state: SpeState::Idle,
                state_since: Cycle::ZERO,
                pkts_waiting_eib: 0,
                pkts_waiting_mem: 0,
                stalls: SpeMetrics::default(),
            };
            ctx.state = ctx.classify();
            ctx
        })
        .collect();

    let mut eib = Eib::new(Topology::cbe(), cfg.eib);
    let mut mem = MemorySystem::new(cfg.local_bank, cfg.remote_bank, cfg.numa);
    if let Some(fp) = faults {
        eib.set_faults(fp.eib.clone());
        mem.set_faults(fp.local_bank.clone(), fp.remote_bank.clone(), fp.seed);
    }
    let fabric = Fabric {
        eib,
        cmdbus: CommandBus::new(cfg.cmd_issue_interval, cfg.cmd_latency),
        mem,
        placement: *placement,
        spes,
        packets: Vec::new(),
        free_slots: Vec::new(),
        peak_live_packets: 0,
        suppressed_pumps: 0,
        kick_scheduled: None,
        delivered_packets: 0,
        fault_stats: FaultStats::default(),
        latency: LatencyMetrics::default(),
        data,
        trace,
    };

    let mut sim = Simulation::new(FabricModel { fabric, cfg });
    for spe in plan.active_spes() {
        // Book the seed pump so the staleness gate recognises it as the
        // genuine pending pump for this SPE.
        sim.model_mut().fabric.spes[spe].pump_scheduled = Some(Cycle::ZERO);
        sim.schedule(Cycle::ZERO, Ev::Pump(spe));
    }
    let outcome = sim.run_guarded(Cycle::new(MAX_CYCLES), MAX_STAGNANT_EVENTS);
    let events_processed = sim.events_processed();
    let events_since_progress = sim.events_since_progress();
    let at_cycle = sim.last_event_cycle().as_u64();
    let mut fabric = sim.into_model().fabric;
    let stalled = match outcome {
        RunOutcome::HorizonExceeded(_) => Some(StallKind::HorizonExceeded),
        RunOutcome::Stagnant(_) => Some(StallKind::Livelock),
        // Drained, but an SPE still holds queued or in-flight work:
        // nothing will ever wake it.
        RunOutcome::Drained(_) => fabric
            .spes
            .iter()
            .any(|ctx| !ctx.commands.is_empty() || !ctx.mfc.is_idle())
            .then_some(StallKind::Deadlock),
    };
    if let Some(kind) = stalled {
        return Err(RunFailure::Stall(Box::new(diagnose(
            kind,
            at_cycle,
            events_processed,
            events_since_progress,
            &fabric,
        ))));
    }

    let cycles = fabric
        .spes
        .iter()
        .map(|s| s.last_delivery.as_u64())
        .max()
        .unwrap_or(0);
    // Flush the cycle accounting to the run end: every SPE's partition
    // and occupancy histogram then sums to exactly `cycles`.
    let end = Cycle::new(cycles);
    let mut per_spe_metrics = Vec::with_capacity(fabric.spes.len());
    for ctx in &mut fabric.spes {
        let dt = end.saturating_since(ctx.state_since);
        ctx.charge(dt);
        ctx.state_since = end;
        ctx.mfc.flush_occupancy(end);
        let mut m = ctx.stalls.clone();
        m.occupancy_cycles = ctx.mfc.occupancy_cycles().to_vec();
        per_spe_metrics.push(m);
    }
    let mut fault_stats = fabric.fault_stats;
    if let Some(fp) = faults {
        fault_stats.degraded_cycles = fp.degraded_cycles(cycles);
    }
    let metrics = FabricMetrics {
        run_cycles: cycles,
        per_spe: per_spe_metrics,
        rings: fabric.eib.ring_stats().to_vec(),
        banks: BankId::ALL
            .iter()
            .map(|&bank| BankMetrics {
                bank,
                stats: *fabric.mem.bank(bank).stats(),
            })
            .collect(),
        faults: fault_stats,
        events: events_processed,
        suppressed_pumps: fabric.suppressed_pumps,
        peak_live_packets: fabric.peak_live_packets,
    };
    let per_spe_bytes: Vec<u64> = fabric.spes.iter().map(|s| s.bytes).collect();
    let per_spe_cycles: Vec<u64> = fabric
        .spes
        .iter()
        .map(|s| s.last_delivery.as_u64())
        .collect();
    let total_bytes: u64 = per_spe_bytes.iter().sum();
    let per_spe_gbps: Vec<f64> = fabric
        .spes
        .iter()
        .map(|s| cfg.clock.gbytes_per_sec(s.bytes, s.last_delivery.as_u64()))
        .collect();
    Ok(FabricReport {
        cycles,
        total_bytes,
        aggregate_gbps: cfg.clock.gbytes_per_sec(total_bytes, cycles),
        sum_gbps: per_spe_gbps.iter().sum(),
        per_spe_bytes,
        per_spe_cycles,
        per_spe_gbps,
        eib: *fabric.eib.stats(),
        packets: fabric.delivered_packets,
        metrics,
        latency: fabric.latency,
    })
}

/// Snapshots the stuck machine into a [`StallDiagnosis`].
fn diagnose(
    kind: StallKind,
    at_cycle: u64,
    events_processed: u64,
    events_since_progress: u64,
    fabric: &Fabric<'_>,
) -> StallDiagnosis {
    let mut packets_by_phase = [0u64; 6];
    for p in &fabric.packets {
        if let Some(i) = PacketPhase::IN_FLIGHT.iter().position(|&q| q == p.phase) {
            packets_by_phase[i] += 1;
        }
    }
    let per_spe = fabric
        .spes
        .iter()
        .enumerate()
        .map(|(i, ctx)| SpeStall {
            spe: i,
            physical: fabric.placement.physical(i),
            state: ctx.classify().name(),
            pending_commands: ctx.commands.len(),
            mfc_queue_depth: ctx.mfc.queue_len(),
            outstanding: ctx.mfc.outstanding(),
            slot_budget: ctx.mfc.slot_budget(),
            waiting_sync: ctx.waiting_sync,
            packets_waiting_eib: ctx.pkts_waiting_eib,
            packets_waiting_mem: ctx.pkts_waiting_mem,
            last_delivery_cycle: ctx.last_delivery.as_u64(),
        })
        .collect();
    StallDiagnosis {
        kind,
        at_cycle,
        horizon: MAX_CYCLES,
        last_progress_cycle: fabric
            .spes
            .iter()
            .map(|s| s.last_delivery.as_u64())
            .max()
            .unwrap_or(0),
        events_processed,
        events_since_progress,
        delivered_packets: fabric.delivered_packets,
        packets_by_phase,
        nacks: fabric.fault_stats.nacks,
        retries: fabric.fault_stats.retries,
        retries_exhausted: fabric.fault_stats.retries_exhausted,
        per_spe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellSystem, SPE_COUNT};

    fn system() -> CellSystem {
        CellSystem::blade()
    }

    const MIB: u64 = 1 << 20;

    #[test]
    fn single_spe_get_is_latency_limited_near_ten() {
        let plan = TransferPlan::builder()
            .get_from_memory(0, 2 * MIB, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let r = system().try_run(&Placement::identity(), &plan).unwrap();
        assert_eq!(r.total_bytes, 2 * MIB);
        assert!(
            r.aggregate_gbps > 8.0 && r.aggregate_gbps < 12.5,
            "paper: ~10 GB/s, got {}",
            r.aggregate_gbps
        );
    }

    #[test]
    fn two_spes_use_both_banks_and_beat_one_bank() {
        let mut b = TransferPlan::builder();
        for spe in 0..2 {
            b = b.get_from_memory(spe, 2 * MIB, 16 * 1024, SyncPolicy::AfterAll);
        }
        let r = system()
            .try_run(&Placement::identity(), &b.build().unwrap())
            .unwrap();
        // SPE0 streams the local bank (~10), SPE1 the 7 GB/s remote one.
        assert!(
            r.sum_gbps > 15.0,
            "two banks should beat 16.8-ε of one: {}",
            r.sum_gbps
        );
        assert!(r.per_spe_gbps[0] > r.per_spe_gbps[1]);
    }

    #[test]
    fn pair_exchange_approaches_peak_for_large_elements() {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, 2 * MIB, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let r = system().try_run(&Placement::identity(), &plan).unwrap();
        // get+put concurrently: peak 33.6 GB/s; expect near-peak.
        assert!(
            r.aggregate_gbps > 26.0,
            "paper: near 33.6 peak, got {}",
            r.aggregate_gbps
        );
    }

    #[test]
    fn small_elements_collapse_dma_elem_bandwidth() {
        let big = TransferPlan::builder()
            .exchange_with(0, 1, MIB, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let small = TransferPlan::builder()
            .exchange_with(0, 1, MIB / 4, 128, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let sys = system();
        let rb = sys.try_run(&Placement::identity(), &big).unwrap();
        let rs = sys.try_run(&Placement::identity(), &small).unwrap();
        assert!(
            rs.aggregate_gbps < rb.aggregate_gbps / 2.0,
            "128 B elems must collapse: {} vs {}",
            rs.aggregate_gbps,
            rb.aggregate_gbps
        );
    }

    #[test]
    fn dma_list_stays_fast_for_small_elements() {
        let sys = system();
        let elem = TransferPlan::builder()
            .exchange_with(0, 1, MIB / 4, 128, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let list = TransferPlan::builder()
            .exchange_with_list(0, 1, MIB / 4, 128, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let re = sys.try_run(&Placement::identity(), &elem).unwrap();
        let rl = sys.try_run(&Placement::identity(), &list).unwrap();
        assert!(
            rl.aggregate_gbps > 2.0 * re.aggregate_gbps,
            "lists amortize startup: list={} elem={}",
            rl.aggregate_gbps,
            re.aggregate_gbps
        );
    }

    #[test]
    fn synchronizing_after_every_dma_hurts() {
        let sys = system();
        let eager = TransferPlan::builder()
            .exchange_with(0, 1, MIB, 4096, SyncPolicy::Every(1))
            .build()
            .unwrap();
        let lazy = TransferPlan::builder()
            .exchange_with(0, 1, MIB, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let re = sys.try_run(&Placement::identity(), &eager).unwrap();
        let rl = sys.try_run(&Placement::identity(), &lazy).unwrap();
        assert!(
            re.aggregate_gbps < rl.aggregate_gbps * 0.7,
            "eager sync must drain the pipeline: {} vs {}",
            re.aggregate_gbps,
            rl.aggregate_gbps
        );
    }

    #[test]
    fn put_and_get_have_similar_memory_bandwidth() {
        let sys = system();
        let get = TransferPlan::builder()
            .get_from_memory(0, 2 * MIB, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let put = TransferPlan::builder()
            .put_to_memory(0, 2 * MIB, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let rg = sys.try_run(&Placement::identity(), &get).unwrap();
        let rp = sys.try_run(&Placement::identity(), &put).unwrap();
        let ratio = rp.aggregate_gbps / rg.aggregate_gbps;
        assert!((0.7..=1.4).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn report_accounts_every_byte_per_spe() {
        let mut b = TransferPlan::builder();
        for spe in 0..4 {
            b = b.get_from_memory(spe, MIB, 4096, SyncPolicy::AfterAll);
        }
        let r = system()
            .try_run(&Placement::identity(), &b.build().unwrap())
            .unwrap();
        for spe in 0..4 {
            assert_eq!(r.per_spe_bytes[spe], MIB);
            assert!(r.per_spe_gbps[spe] > 0.0);
        }
        for spe in 4..SPE_COUNT {
            assert_eq!(r.per_spe_bytes[spe], 0);
            assert_eq!(r.per_spe_gbps[spe], 0.0);
        }
        assert_eq!(r.total_bytes, 4 * MIB);
        // 1 MiB / 128 B = 8192 packets per SPE.
        assert_eq!(r.packets, 4 * 8192);
    }

    #[test]
    fn placement_changes_results_but_not_totals() {
        let mut b = TransferPlan::builder();
        for spe in 0..SPE_COUNT {
            let partner = (spe + 1) % SPE_COUNT;
            b = b.exchange_with(spe, partner, MIB / 2, 4096, SyncPolicy::AfterAll);
        }
        let plan = b.build().unwrap();
        let sys = system();
        let id = sys.try_run(&Placement::identity(), &plan).unwrap();
        let rev = sys
            .try_run(
                &Placement::from_mapping([7, 6, 5, 4, 3, 2, 1, 0]).unwrap(),
                &plan,
            )
            .unwrap();
        assert_eq!(id.total_bytes, rev.total_bytes);
        assert!(id.aggregate_gbps > 0.0 && rev.aggregate_gbps > 0.0);
    }

    #[test]
    fn latency_digest_counts_every_command_and_conserves() {
        use crate::latency::DmaPathClass;
        let plan = TransferPlan::builder()
            .get_from_memory(0, MIB, 4096, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let r = system().try_run(&Placement::identity(), &plan).unwrap();
        // 1 MiB in 4 KiB commands = 256 commands, all on the mem-get path.
        assert_eq!(r.latency.total_commands(), 256);
        let path = r.latency.path(DmaPathClass::MemGet);
        assert_eq!(path.commands, 256);
        assert_eq!(path.end_to_end.count, 256);
        // Phase attribution conserves: Σ per-phase cycles == Σ latencies.
        assert_eq!(path.phase_cycles.iter().sum::<u64>(), path.end_to_end.total);
        assert_eq!(path.dominant_counts.iter().sum::<u64>(), 256);
        // Every command saw the ring and the bank.
        assert!(path.phase_cycles[3] > 0, "service phase cannot be empty");
        assert_eq!(r.latency.element_service.count, 256);
        // Other paths stayed empty.
        assert_eq!(r.latency.path(DmaPathClass::LsGet).commands, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, MIB / 2, 2048, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let sys = system();
        let a = sys.try_run(&Placement::identity(), &plan).unwrap();
        let b = sys.try_run(&Placement::identity(), &plan).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.aggregate_gbps, b.aggregate_gbps);
    }
}
