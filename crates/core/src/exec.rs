//! Parallel sweep execution with a deterministic run cache.
//!
//! Every figure of the ISPASS 2007 protocol is a sweep of *independent*
//! simulator runs — seeded placements × DMA element sizes × SPE counts —
//! so the sweep is embarrassingly parallel. This module supplies the
//! fan-out/reduce machinery the experiments build on:
//!
//! * [`RunSpec`] — one simulation point: a machine, a [`TransferPlan`]
//!   and a [`Placement`], plus the [`RunKey`] that identifies it;
//! * [`SweepExecutor`] — runs a batch of specs over
//!   [`std::thread::scope`] (no work stealing: a single atomic cursor
//!   hands out work), with the worker count taken from `--jobs`-style
//!   configuration, the `CELLSIM_JOBS` environment variable, or
//!   [`std::thread::available_parallelism`];
//! * a process-wide-free, executor-local **run cache** keyed by
//!   [`RunKey`] `(machine-config hash, workload, placement)`, so figures
//!   that re-simulate the same point — Figure 12's 8-SPE column and
//!   Figure 13's spread runs, Figure 15 and Figure 16 — simulate it
//!   exactly once.
//!
//! # Determinism
//!
//! Results are bit-identical for any job count, because nothing a run
//! computes depends on scheduling:
//!
//! 1. each run's placement is derived from the sweep seed and the run's
//!    index ([`Placement::lottery`]), never from a generator shared
//!    across runs;
//! 2. the simulator itself is deterministic for a given
//!    `(config, placement, plan)`;
//! 3. [`SweepExecutor::run`] returns results in spec order regardless of
//!    which worker finished which spec when.
//!
//! The cache preserves this: a hit returns the exact report the miss
//! computed, so cached and uncached sweeps render identical figures.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::config::{CellConfig, CellSystem};
use crate::diskcache::{DiskCache, DiskCacheStats};
use crate::fabric::FabricReport;
use crate::failure::StallDiagnosis;
use crate::placement::Placement;
use crate::plan::{SyncPolicy, TransferPlan};
use crate::tracestore::RunDir;

// The executor moves configs, plans and reports across scoped threads;
// keep that a compile-time guarantee rather than an accident.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CellSystem>();
    assert_send_sync::<TransferPlan>();
    assert_send_sync::<FabricReport>();
    assert_send_sync::<Placement>();
};

/// Stable fingerprint of a machine configuration.
///
/// FNV-1a over the `Debug` rendering: every tunable of [`CellConfig`] is
/// a plain value that `Debug`-prints deterministically, and the hash is
/// pinned here rather than borrowed from the standard library —
/// `DefaultHasher`'s algorithm is explicitly *not* specified to stay the
/// same across Rust releases, which would silently re-key any persisted
/// cached reports or metric baselines.
#[must_use]
pub fn config_fingerprint(config: &CellConfig) -> u64 {
    // FNV-1a, 64-bit (offset basis / prime per the FNV reference).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{config:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a run simulates, minus the placement: the experiment-point
/// descriptor part of a [`RunKey`].
///
/// Two specs with equal `Workload`s **must** carry plans that simulate
/// identically — builders in [`crate::experiments`] guarantee this by
/// deriving both the plan and the workload from the same parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Traffic pattern, e.g. `"couples"`, `"cycle"`, `"mem-get"`.
    pub pattern: &'static str,
    /// Active SPEs.
    pub spes: u8,
    /// Payload bytes per active SPE (per direction where bidirectional).
    pub volume: u64,
    /// DMA element size in bytes.
    pub elem: u32,
    /// DMA-list (`true`) vs DMA-elem (`false`).
    pub list: bool,
    /// Tag-group synchronization policy.
    pub sync: SyncPolicy,
    /// Packed pattern-specific parameters (0 for the paper's streaming
    /// micro-benchmarks; application workloads fold their generator
    /// parameters — table sizes, grid shapes, seeds — in here so the
    /// cache/baseline identity covers them).
    pub params: u64,
}

/// Cache identity of one simulation point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// [`config_fingerprint`] of the machine.
    pub config: u64,
    /// [`CellSystem::faults_fingerprint`] of the machine: 0 on a healthy
    /// blade, the fault plan's canonical-JSON fingerprint otherwise —
    /// degraded and healthy runs of the same point never share a cache
    /// entry.
    pub faults: u64,
    /// The experiment point.
    pub workload: Workload,
    /// Logical→physical mapping of the run.
    pub placement: [u8; 8],
}

impl fmt::Display for RunKey {
    /// Compact one-line identity, the form failures are reported in:
    /// `pattern=couples spes=2 volume=262144 elem=128 list=false
    /// sync=AfterAll params=0 placement=[0,1,..] config=0x.. faults=0x..`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = &self.workload;
        let placement: Vec<String> = self.placement.iter().map(u8::to_string).collect();
        write!(
            f,
            "pattern={} spes={} volume={} elem={} list={} sync={:?} params={} \
             placement=[{}] config={:#018x} faults={:#018x}",
            w.pattern,
            w.spes,
            w.volume,
            w.elem,
            w.list,
            w.sync,
            w.params,
            placement.join(","),
            self.config,
            self.faults
        )
    }
}

/// Why one sweep point produced no report. The sweep as a whole keeps
/// going: every other spec still returns its result.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fabric returned a typed stall.
    Stall {
        /// Which point stalled.
        key: RunKey,
        /// The full diagnosis from the fabric (boxed: the happy path
        /// carries only a pointer).
        diagnosis: Box<StallDiagnosis>,
    },
    /// The run panicked; the worker caught it at the run boundary.
    Panicked {
        /// Which point panicked.
        key: RunKey,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The run outlived a wall-clock budget imposed by the caller (the
    /// serve daemon's per-run watchdog). The simulation itself may
    /// still be running on its thread; its eventual result was
    /// abandoned by whoever was waiting on it.
    Timeout {
        /// Which point timed out.
        key: RunKey,
        /// The budget it exceeded, in milliseconds.
        limit_ms: u64,
    },
}

impl RunError {
    /// The [`RunKey`] of the failed point.
    pub fn key(&self) -> &RunKey {
        match self {
            RunError::Stall { key, .. }
            | RunError::Panicked { key, .. }
            | RunError::Timeout { key, .. } => key,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stall { key, diagnosis } => {
                write!(f, "run stalled [{key}]: {diagnosis}")
            }
            RunError::Panicked { key, message } => {
                write!(f, "run panicked [{key}]: {message}")
            }
            RunError::Timeout { key, limit_ms } => {
                write!(
                    f,
                    "run timed out [{key}]: exceeded {limit_ms} ms wall clock"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One independent simulation: a machine, a plan, and a placement.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cache identity; see [`RunSpec::new`].
    pub key: RunKey,
    /// The machine to simulate on.
    pub system: CellSystem,
    /// The DMA program (shared: plans can be large at paper scale).
    pub plan: Arc<TransferPlan>,
    /// The logical→physical SPE mapping.
    pub placement: Placement,
}

impl RunSpec {
    /// Builds a spec, deriving the [`RunKey`] from the machine, workload
    /// and placement.
    pub fn new(
        system: &CellSystem,
        workload: Workload,
        placement: Placement,
        plan: Arc<TransferPlan>,
    ) -> RunSpec {
        RunSpec {
            key: RunKey {
                config: config_fingerprint(system.config()),
                faults: system.faults_fingerprint(),
                workload,
                placement: *placement.mapping(),
            },
            system: system.clone(),
            plan,
            placement,
        }
    }
}

/// Cache effectiveness counters (see [`SweepExecutor::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Specs answered from the cache (including duplicates within one
    /// batch beyond the first occurrence).
    pub hits: u64,
    /// Specs that required a simulation.
    pub misses: u64,
}

/// Default entry cap of the in-memory report cache. A full paper
/// protocol touches well under 2 000 distinct run keys, so at CLI sweep
/// sizes the bound never evicts; it only matters to a resident process
/// (the `cellsim-serve` daemon) fed sustained distinct-key traffic,
/// where an unbounded map would grow without limit.
pub const DEFAULT_CACHE_CAPACITY: usize = 16_384;

/// The in-memory `RunKey → Arc<FabricReport>` tier, bounded by entry
/// count with least-recently-used eviction. Reports are shared `Arc`s,
/// so evicting an entry never invalidates results already handed out —
/// a re-requested evicted key is simply recomputed (or reloaded from
/// the disk tier).
#[derive(Debug)]
struct BoundedCache {
    map: HashMap<RunKey, (Arc<FabricReport>, u64)>,
    /// Monotone use counter; the entry with the smallest stamp is the
    /// least recently used.
    tick: u64,
    capacity: usize,
}

impl BoundedCache {
    fn new(capacity: usize) -> BoundedCache {
        BoundedCache {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    fn get(&mut self, key: &RunKey) -> Option<Arc<FabricReport>> {
        self.tick += 1;
        let tick = self.tick;
        let (report, stamp) = self.map.get_mut(key)?;
        *stamp = tick;
        Some(Arc::clone(report))
    }

    /// Inserts, evicting the least-recently-used entry if the cache is
    /// full and `key` is new. The eviction scan is O(len), which is
    /// irrelevant next to the milliseconds-per-run simulations that
    /// produce the entries.
    fn insert(&mut self, key: RunKey, report: Arc<FabricReport>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(key, (report, self.tick));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

impl CacheStats {
    /// Fraction of specs answered without simulating, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Runs batches of [`RunSpec`]s across threads, memoizing by [`RunKey`].
///
/// ```
/// use std::sync::Arc;
/// use cellsim_core::exec::{RunSpec, SweepExecutor, Workload};
/// use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};
///
/// let system = CellSystem::blade();
/// let plan = Arc::new(
///     TransferPlan::builder()
///         .get_from_memory(0, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
///         .build()?,
/// );
/// let workload = Workload {
///     pattern: "mem-get",
///     spes: 1,
///     volume: 1 << 20,
///     elem: 16 * 1024,
///     list: false,
///     sync: SyncPolicy::AfterAll,
///     params: 0,
/// };
/// let exec = SweepExecutor::new(2);
/// let specs: Vec<RunSpec> = (0..4)
///     .map(|k| RunSpec::new(&system, workload.clone(), Placement::lottery(7, k), Arc::clone(&plan)))
///     .collect();
/// let a = exec.run(specs.clone());
/// let b = exec.run(specs); // all four answered from cache
/// assert_eq!(a, b);
/// assert_eq!(exec.stats().hits, 4);
/// # Ok::<(), cellsim_core::PlanError>(())
/// ```
#[derive(Debug)]
pub struct SweepExecutor {
    jobs: usize,
    cache: Mutex<BoundedCache>,
    /// Failures not yet collected by [`SweepExecutor::take_failures`],
    /// in batch/spec order (one entry per distinct failed key per
    /// batch). Drained on read so a long-lived executor — the serve
    /// daemon reuses one across every client batch — never mixes one
    /// caller's failures into another's or grows without bound.
    failures: Mutex<Vec<RunError>>,
    /// Optional persistent tier under the in-memory cache.
    disk: Option<DiskCache>,
    /// Optional per-run artifact root for recorded batches
    /// ([`SweepExecutor::try_run_recorded`]).
    run_dir: Option<RunDir>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SweepExecutor {
    /// An executor honouring `CELLSIM_JOBS`, falling back to
    /// [`std::thread::available_parallelism`].
    fn default() -> Self {
        SweepExecutor::new(jobs_from_env().unwrap_or(0))
    }
}

/// Parses `CELLSIM_JOBS` (ignored unless a positive integer).
#[must_use]
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("CELLSIM_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

impl SweepExecutor {
    /// An executor with `jobs` workers; `0` means
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new(jobs: usize) -> SweepExecutor {
        SweepExecutor::with_cache_capacity(jobs, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`SweepExecutor::new`] with an explicit in-memory cache
    /// entry cap (minimum 1). The default
    /// ([`DEFAULT_CACHE_CAPACITY`]) never evicts at CLI sweep sizes;
    /// long-running services tune this to bound resident memory.
    #[must_use]
    pub fn with_cache_capacity(jobs: usize, capacity: usize) -> SweepExecutor {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        SweepExecutor {
            jobs,
            cache: Mutex::new(BoundedCache::new(capacity)),
            failures: Mutex::new(Vec::new()),
            disk: None,
            run_dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Like [`SweepExecutor::new`], with a persistent cache directory
    /// under the in-memory cache: fresh reports are written there (one
    /// verified entry per [`RunKey`]), and future executors — including a
    /// re-run after an interrupted sweep — resume from them. See
    /// [`crate::diskcache`] for the entry format and validation rules.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the directory.
    pub fn with_cache_dir(jobs: usize, dir: &std::path::Path) -> std::io::Result<SweepExecutor> {
        SweepExecutor::with_cache_options(jobs, DEFAULT_CACHE_CAPACITY, Some(dir))
    }

    /// Fully explicit construction: worker count, in-memory entry cap,
    /// and an optional persistent tier — the form a resident daemon
    /// configures from its command line.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the cache directory.
    pub fn with_cache_options(
        jobs: usize,
        capacity: usize,
        dir: Option<&std::path::Path>,
    ) -> std::io::Result<SweepExecutor> {
        let mut exec = SweepExecutor::with_cache_capacity(jobs, capacity);
        if let Some(dir) = dir {
            exec.disk = Some(DiskCache::open(dir)?);
        }
        Ok(exec)
    }

    /// The worker count batches fan out over.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Locks the in-memory cache, recovering from poison: a panicking
    /// worker is caught at the run boundary, so the map is never left
    /// mid-mutation — the data is safe even if a past batch crashed while
    /// holding the lock.
    fn lock_cache(&self) -> MutexGuard<'_, BoundedCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drains every failure recorded since the last call, in batch order
    /// (one entry per distinct failed key per batch). Draining — rather
    /// than accumulating for the life of the executor — keeps a reused
    /// executor honest: each caller sees exactly the failures of the
    /// batches it ran since it last collected, and a resident daemon
    /// does not leak an ever-growing failure log.
    pub fn take_failures(&self) -> Vec<RunError> {
        std::mem::take(&mut *self.failures.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Entries currently resident in the in-memory cache (bounded by
    /// the configured capacity).
    pub fn cache_len(&self) -> usize {
        self.lock_cache().len()
    }

    /// Seeds the in-memory cache with an already-computed report, so a
    /// later sweep over `key` is answered without simulating. This is
    /// how a remote client replays reports streamed from `cellsim-serve`
    /// through the local figure renderers: preload every point, then run
    /// the experiment — every run is a cache hit and the rendered figure
    /// is bit-identical to a local sweep.
    pub fn preload(&self, key: RunKey, report: Arc<FabricReport>) {
        self.lock_cache().insert(key, report);
    }

    /// Attaches a per-run artifact root: recorded batches
    /// ([`SweepExecutor::try_run_recorded`] with `record = true`) commit
    /// one trace store + manifest per [`RunKey`] under `dir`. See
    /// [`crate::tracestore`].
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the directory.
    pub fn set_run_dir(&mut self, dir: &std::path::Path) -> std::io::Result<()> {
        self.run_dir = Some(RunDir::create(dir)?);
        Ok(())
    }

    /// The attached artifact root, if any.
    pub fn run_dir(&self) -> Option<&RunDir> {
        self.run_dir.as_ref()
    }

    /// Persistent-cache counters, if a cache directory is attached.
    pub fn disk_stats(&self) -> Option<DiskCacheStats> {
        self.disk.as_ref().map(DiskCache::stats)
    }

    /// Census of the attached cache directory (entries and bytes on
    /// disk, including other processes' writes), if one is attached.
    pub fn disk_dir_stats(&self) -> Option<crate::diskcache::DiskDirStats> {
        self.disk.as_ref().map(DiskCache::dir_stats)
    }

    /// Cache hit/miss counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Runs every spec, in parallel, returning per-spec results in spec
    /// order. One failed point never takes the sweep down: a stall comes
    /// back as [`RunError::Stall`] with its diagnosis, a panic is caught
    /// at the run boundary and comes back as [`RunError::Panicked`], and
    /// every other spec still returns its report. Failures are also
    /// recorded on the executor until collected
    /// ([`SweepExecutor::take_failures`]).
    ///
    /// Specs whose key is already cached — in memory from earlier
    /// batches, duplicated within this one, or (with
    /// [`SweepExecutor::with_cache_dir`]) verified on disk — are not
    /// re-simulated. Only successful reports are cached; a failed key is
    /// retried on its next appearance.
    /// With a run directory attached ([`SweepExecutor::set_run_dir`])
    /// every batch records per-run trace artifacts; this is
    /// `try_run_recorded(specs, true)`. Callers needing unrecorded
    /// batches on a recording executor (the serve daemon's per-batch
    /// opt-in) call [`SweepExecutor::try_run_recorded`] directly.
    pub fn try_run(&self, specs: Vec<RunSpec>) -> Vec<Result<Arc<FabricReport>, RunError>> {
        self.try_run_recorded(specs, true)
    }

    /// Like [`SweepExecutor::try_run`], optionally recording a per-run
    /// trace artifact for every spec. With `record = true` and a run
    /// directory attached ([`SweepExecutor::set_run_dir`]), each key ends
    /// the batch with a complete store + manifest entry: keys whose
    /// artifact already exists are answered from cache as usual (counted
    /// in [`RunDirStats::reused`](crate::tracestore::RunDirStats)), while
    /// keys missing one bypass the report caches and re-simulate with a
    /// streaming store writer attached — tracing never perturbs timing,
    /// so the report (and the refreshed cache entry) is bit-identical to
    /// an untraced run. With `record = false` (or no run directory) this
    /// is exactly `try_run`.
    pub fn try_run_recorded(
        &self,
        specs: Vec<RunSpec>,
        record: bool,
    ) -> Vec<Result<Arc<FabricReport>, RunError>> {
        let recording = if record { self.run_dir.as_ref() } else { None };
        // Resolve against the cache tiers and dedup the remainder,
        // keeping the first spec of each distinct key as the one to
        // simulate.
        let mut todo: Vec<&RunSpec> = Vec::new();
        let mut todo_index: HashMap<&RunKey, usize> = HashMap::new();
        // For each spec: Ok(report) if cached, Err(todo slot) otherwise.
        let mut resolution: Vec<Result<Arc<FabricReport>, usize>> = Vec::with_capacity(specs.len());
        {
            let mut cache = self.lock_cache();
            for spec in &specs {
                // Within-batch duplicates always collapse onto the first
                // occurrence (which records the artifact if one is owed).
                if let Some(&slot) = todo_index.get(&spec.key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    resolution.push(Err(slot));
                    continue;
                }
                // A recorded batch may only answer from the report caches
                // when the key's artifact is already complete; otherwise
                // it re-simulates to produce one.
                let cacheable = match recording {
                    Some(rd) => rd.is_complete(&spec.key),
                    None => true,
                };
                if cacheable {
                    if let Some(report) = cache.get(&spec.key) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(rd) = recording {
                            rd.note_reused();
                        }
                        resolution.push(Ok(report));
                        continue;
                    }
                    // Memory miss: a verified disk entry promotes into the
                    // memory tier and counts as a hit.
                    if let Some(report) = self.disk.as_ref().and_then(|d| d.load(&spec.key)) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(rd) = recording {
                            rd.note_reused();
                        }
                        let report = Arc::new(report);
                        cache.insert(spec.key.clone(), Arc::clone(&report));
                        resolution.push(Ok(report));
                        continue;
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let slot = todo.len();
                todo_index.insert(&spec.key, slot);
                todo.push(spec);
                resolution.push(Err(slot));
            }
        }

        // Fan the distinct misses out over scoped workers. A shared
        // atomic cursor hands out specs; results land in per-spec slots,
        // so the outcome is independent of which worker ran what. Each
        // run is isolated with `catch_unwind`: a panicking point becomes
        // that slot's error, and the worker moves on to the next spec.
        let fresh: Vec<OnceLock<Result<Arc<FabricReport>, RunError>>> =
            (0..todo.len()).map(|_| OnceLock::new()).collect();
        let simulate = |spec: &RunSpec| -> Result<Arc<FabricReport>, RunError> {
            let outcome = catch_unwind(AssertUnwindSafe(|| match recording {
                Some(rd) => rd.run_recorded(spec),
                None => spec.system.try_run(&spec.placement, &spec.plan),
            }));
            match outcome {
                Ok(Ok(report)) => Ok(Arc::new(report)),
                Ok(Err(failure)) => Err(RunError::Stall {
                    key: spec.key.clone(),
                    diagnosis: Box::new(failure.diagnosis().clone()),
                }),
                Err(payload) => Err(RunError::Panicked {
                    key: spec.key.clone(),
                    message: panic_message(payload.as_ref()),
                }),
            }
        };
        let workers = self.jobs.min(todo.len());
        if workers > 1 {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = todo.get(i) else { break };
                        let _ = fresh[i].set(simulate(spec));
                    });
                }
            });
        } else {
            for (slot, spec) in fresh.iter().zip(&todo) {
                let _ = slot.set(simulate(spec));
            }
        }

        // Publish the fresh successes (memory + disk), record the
        // failures, then assemble in spec order.
        {
            let mut cache = self.lock_cache();
            for (spec, slot) in todo.iter().zip(&fresh) {
                if let Some(Ok(report)) = slot.get() {
                    if let Some(disk) = &self.disk {
                        disk.store(&spec.key, report);
                    }
                    cache.insert(spec.key.clone(), Arc::clone(report));
                }
            }
        }
        {
            let mut failures = self.failures.lock().unwrap_or_else(PoisonError::into_inner);
            for (spec, slot) in todo.iter().zip(&fresh) {
                match slot.get() {
                    Some(Ok(_)) => {}
                    Some(Err(error)) => failures.push(error.clone()),
                    // A worker thread died without writing its slot (it
                    // can only happen if the panic escaped the catch,
                    // e.g. a panic in a panic payload's Drop).
                    None => failures.push(RunError::Panicked {
                        key: spec.key.clone(),
                        message: "worker terminated without a result".to_string(),
                    }),
                }
            }
        }
        let take = |slot: usize| -> Result<Arc<FabricReport>, RunError> {
            match fresh[slot].get() {
                Some(Ok(report)) => Ok(Arc::clone(report)),
                Some(Err(error)) => Err(error.clone()),
                None => Err(RunError::Panicked {
                    key: todo[slot].key.clone(),
                    message: "worker terminated without a result".to_string(),
                }),
            }
        };
        resolution
            .into_iter()
            .map(|r| match r {
                Ok(report) => Ok(report),
                Err(slot) => take(slot),
            })
            .collect()
    }

    /// Panicking form of [`SweepExecutor::try_run`] for sweeps that are
    /// known healthy (unit tests, benches): unwraps every result.
    ///
    /// # Panics
    ///
    /// Panics with the first [`RunError`]'s message if any point fails.
    pub fn run(&self, specs: Vec<RunSpec>) -> Vec<Arc<FabricReport>> {
        self.try_run(specs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|error| panic!("{error}")))
            .collect()
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TransferPlanBuilder;

    fn spec(system: &CellSystem, elem: u32, placement: Placement) -> RunSpec {
        let plan = Arc::new(
            TransferPlanBuilder::new()
                .get_from_memory(0, 64 << 10, elem, SyncPolicy::AfterAll)
                .build()
                .expect("valid plan"),
        );
        RunSpec::new(
            system,
            Workload {
                pattern: "mem-get",
                spes: 1,
                volume: 64 << 10,
                elem,
                list: false,
                sync: SyncPolicy::AfterAll,
                params: 0,
            },
            placement,
            plan,
        )
    }

    #[test]
    fn results_are_in_spec_order_and_job_invariant() {
        let system = CellSystem::blade();
        let specs: Vec<RunSpec> = (0..6)
            .flat_map(|k| [2048u32, 16384].into_iter().map(move |elem| (k, elem)))
            .map(|(k, elem)| spec(&system, elem, Placement::lottery(11, k)))
            .collect();
        let serial = SweepExecutor::new(1).run(specs.clone());
        let parallel = SweepExecutor::new(4).run(specs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn duplicate_points_simulate_once() {
        let system = CellSystem::blade();
        let p = Placement::lottery(3, 0);
        let exec = SweepExecutor::new(2);
        let batch: Vec<RunSpec> = (0..4).map(|_| spec(&system, 4096, p)).collect();
        let reports = exec.run(batch);
        assert_eq!(exec.stats(), CacheStats { hits: 3, misses: 1 });
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        // A later batch with the same point is served entirely from cache.
        let again = exec.run(vec![spec(&system, 4096, p)]);
        assert_eq!(exec.stats().hits, 4);
        assert_eq!(again[0], reports[0]);
    }

    #[test]
    fn different_configs_do_not_collide() {
        let mut other = CellConfig::default();
        other.mfc.max_outstanding_packets = 2;
        assert_ne!(
            config_fingerprint(&CellConfig::default()),
            config_fingerprint(&other)
        );
    }

    #[test]
    fn cache_growth_is_bounded_with_lru_eviction() {
        let system = CellSystem::blade();
        let exec = SweepExecutor::with_cache_capacity(2, 8);
        // Sustained distinct-key traffic (12 distinct placements of one
        // workload) must not grow the map past its 8-entry cap.
        let keys: Vec<Placement> = (0..12).map(|k| Placement::lottery(0xD15C, k)).collect();
        for p in &keys {
            let _ = exec.run(vec![spec(&system, 4096, *p)]);
        }
        assert!(
            exec.cache_len() <= 8,
            "cache len {} > cap",
            exec.cache_len()
        );
        // The most recent keys survived; re-running them is pure hits.
        let before = exec.stats();
        let recent: Vec<RunSpec> = keys[keys.len() - 4..]
            .iter()
            .map(|p| spec(&system, 4096, *p))
            .collect();
        let _ = exec.run(recent);
        let after = exec.stats();
        assert_eq!(after.misses, before.misses, "recent entries were evicted");
        assert_eq!(after.hits, before.hits + 4);
        // The oldest key was evicted and recomputes as a miss.
        let _ = exec.run(vec![spec(&system, 4096, keys[0])]);
        assert_eq!(exec.stats().misses, after.misses + 1);
        assert!(exec.cache_len() <= 8);
    }

    #[test]
    fn preload_answers_without_simulating() {
        let system = CellSystem::blade();
        let source = SweepExecutor::new(1);
        let s = spec(&system, 4096, Placement::identity());
        let report = source.run(vec![s.clone()]).remove(0);
        let target = SweepExecutor::new(1);
        target.preload(s.key.clone(), Arc::clone(&report));
        let replayed = target.run(vec![s]);
        assert_eq!(replayed[0], report);
        assert_eq!(target.stats(), CacheStats { hits: 1, misses: 0 });
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
