//! Parallel sweep execution with a deterministic run cache.
//!
//! Every figure of the ISPASS 2007 protocol is a sweep of *independent*
//! simulator runs — seeded placements × DMA element sizes × SPE counts —
//! so the sweep is embarrassingly parallel. This module supplies the
//! fan-out/reduce machinery the experiments build on:
//!
//! * [`RunSpec`] — one simulation point: a machine, a [`TransferPlan`]
//!   and a [`Placement`], plus the [`RunKey`] that identifies it;
//! * [`SweepExecutor`] — runs a batch of specs over
//!   [`std::thread::scope`] (no work stealing: a single atomic cursor
//!   hands out work), with the worker count taken from `--jobs`-style
//!   configuration, the `CELLSIM_JOBS` environment variable, or
//!   [`std::thread::available_parallelism`];
//! * a process-wide-free, executor-local **run cache** keyed by
//!   [`RunKey`] `(machine-config hash, workload, placement)`, so figures
//!   that re-simulate the same point — Figure 12's 8-SPE column and
//!   Figure 13's spread runs, Figure 15 and Figure 16 — simulate it
//!   exactly once.
//!
//! # Determinism
//!
//! Results are bit-identical for any job count, because nothing a run
//! computes depends on scheduling:
//!
//! 1. each run's placement is derived from the sweep seed and the run's
//!    index ([`Placement::lottery`]), never from a generator shared
//!    across runs;
//! 2. the simulator itself is deterministic for a given
//!    `(config, placement, plan)`;
//! 3. [`SweepExecutor::run`] returns results in spec order regardless of
//!    which worker finished which spec when.
//!
//! The cache preserves this: a hit returns the exact report the miss
//! computed, so cached and uncached sweeps render identical figures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::config::{CellConfig, CellSystem};
use crate::fabric::FabricReport;
use crate::placement::Placement;
use crate::plan::{SyncPolicy, TransferPlan};

// The executor moves configs, plans and reports across scoped threads;
// keep that a compile-time guarantee rather than an accident.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CellSystem>();
    assert_send_sync::<TransferPlan>();
    assert_send_sync::<FabricReport>();
    assert_send_sync::<Placement>();
};

/// Stable fingerprint of a machine configuration.
///
/// FNV-1a over the `Debug` rendering: every tunable of [`CellConfig`] is
/// a plain value that `Debug`-prints deterministically, and the hash is
/// pinned here rather than borrowed from the standard library —
/// `DefaultHasher`'s algorithm is explicitly *not* specified to stay the
/// same across Rust releases, which would silently re-key any persisted
/// cached reports or metric baselines.
#[must_use]
pub fn config_fingerprint(config: &CellConfig) -> u64 {
    // FNV-1a, 64-bit (offset basis / prime per the FNV reference).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{config:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a run simulates, minus the placement: the experiment-point
/// descriptor part of a [`RunKey`].
///
/// Two specs with equal `Workload`s **must** carry plans that simulate
/// identically — builders in [`crate::experiments`] guarantee this by
/// deriving both the plan and the workload from the same parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Traffic pattern, e.g. `"couples"`, `"cycle"`, `"mem-get"`.
    pub pattern: &'static str,
    /// Active SPEs.
    pub spes: u8,
    /// Payload bytes per active SPE (per direction where bidirectional).
    pub volume: u64,
    /// DMA element size in bytes.
    pub elem: u32,
    /// DMA-list (`true`) vs DMA-elem (`false`).
    pub list: bool,
    /// Tag-group synchronization policy.
    pub sync: SyncPolicy,
}

/// Cache identity of one simulation point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// [`config_fingerprint`] of the machine.
    pub config: u64,
    /// [`CellSystem::faults_fingerprint`] of the machine: 0 on a healthy
    /// blade, the fault plan's canonical-JSON fingerprint otherwise —
    /// degraded and healthy runs of the same point never share a cache
    /// entry.
    pub faults: u64,
    /// The experiment point.
    pub workload: Workload,
    /// Logical→physical mapping of the run.
    pub placement: [u8; 8],
}

/// One independent simulation: a machine, a plan, and a placement.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cache identity; see [`RunSpec::new`].
    pub key: RunKey,
    /// The machine to simulate on.
    pub system: CellSystem,
    /// The DMA program (shared: plans can be large at paper scale).
    pub plan: Arc<TransferPlan>,
    /// The logical→physical SPE mapping.
    pub placement: Placement,
}

impl RunSpec {
    /// Builds a spec, deriving the [`RunKey`] from the machine, workload
    /// and placement.
    pub fn new(
        system: &CellSystem,
        workload: Workload,
        placement: Placement,
        plan: Arc<TransferPlan>,
    ) -> RunSpec {
        RunSpec {
            key: RunKey {
                config: config_fingerprint(system.config()),
                faults: system.faults_fingerprint(),
                workload,
                placement: *placement.mapping(),
            },
            system: system.clone(),
            plan,
            placement,
        }
    }
}

/// Cache effectiveness counters (see [`SweepExecutor::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Specs answered from the cache (including duplicates within one
    /// batch beyond the first occurrence).
    pub hits: u64,
    /// Specs that required a simulation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of specs answered without simulating, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Runs batches of [`RunSpec`]s across threads, memoizing by [`RunKey`].
///
/// ```
/// use std::sync::Arc;
/// use cellsim_core::exec::{RunSpec, SweepExecutor, Workload};
/// use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};
///
/// let system = CellSystem::blade();
/// let plan = Arc::new(
///     TransferPlan::builder()
///         .get_from_memory(0, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
///         .build()?,
/// );
/// let workload = Workload {
///     pattern: "mem-get",
///     spes: 1,
///     volume: 1 << 20,
///     elem: 16 * 1024,
///     list: false,
///     sync: SyncPolicy::AfterAll,
/// };
/// let exec = SweepExecutor::new(2);
/// let specs: Vec<RunSpec> = (0..4)
///     .map(|k| RunSpec::new(&system, workload.clone(), Placement::lottery(7, k), Arc::clone(&plan)))
///     .collect();
/// let a = exec.run(specs.clone());
/// let b = exec.run(specs); // all four answered from cache
/// assert_eq!(a, b);
/// assert_eq!(exec.stats().hits, 4);
/// # Ok::<(), cellsim_core::PlanError>(())
/// ```
#[derive(Debug)]
pub struct SweepExecutor {
    jobs: usize,
    cache: Mutex<HashMap<RunKey, Arc<FabricReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SweepExecutor {
    /// An executor honouring `CELLSIM_JOBS`, falling back to
    /// [`std::thread::available_parallelism`].
    fn default() -> Self {
        SweepExecutor::new(jobs_from_env().unwrap_or(0))
    }
}

/// Parses `CELLSIM_JOBS` (ignored unless a positive integer).
#[must_use]
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("CELLSIM_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

impl SweepExecutor {
    /// An executor with `jobs` workers; `0` means
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new(jobs: usize) -> SweepExecutor {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        SweepExecutor {
            jobs,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The worker count batches fan out over.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Cache hit/miss counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Runs every spec, in parallel, returning reports in spec order.
    ///
    /// Specs whose key is already cached (from earlier batches or
    /// duplicated within this one) are not re-simulated.
    pub fn run(&self, specs: Vec<RunSpec>) -> Vec<Arc<FabricReport>> {
        // Resolve against the cache and dedup the remainder, keeping the
        // first spec of each distinct key as the one to simulate.
        let mut todo: Vec<&RunSpec> = Vec::new();
        let mut todo_index: HashMap<&RunKey, usize> = HashMap::new();
        // For each spec: Ok(report) if cached, Err(todo slot) otherwise.
        let mut resolution: Vec<Result<Arc<FabricReport>, usize>> = Vec::with_capacity(specs.len());
        {
            let cache = self.cache.lock().expect("run cache poisoned");
            for spec in &specs {
                if let Some(report) = cache.get(&spec.key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    resolution.push(Ok(Arc::clone(report)));
                } else if let Some(&slot) = todo_index.get(&spec.key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    resolution.push(Err(slot));
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = todo.len();
                    todo_index.insert(&spec.key, slot);
                    todo.push(spec);
                    resolution.push(Err(slot));
                }
            }
        }

        // Fan the distinct misses out over scoped workers. A shared
        // atomic cursor hands out specs; results land in per-spec slots,
        // so the outcome is independent of which worker ran what.
        let fresh: Vec<OnceLock<Arc<FabricReport>>> =
            (0..todo.len()).map(|_| OnceLock::new()).collect();
        let workers = self.jobs.min(todo.len());
        if workers > 1 {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = todo.get(i) else { break };
                        let report = spec.system.run(&spec.placement, &spec.plan);
                        fresh[i]
                            .set(Arc::new(report))
                            .expect("slot written exactly once");
                    });
                }
            });
        } else {
            for (slot, spec) in fresh.iter().zip(&todo) {
                slot.set(Arc::new(spec.system.run(&spec.placement, &spec.plan)))
                    .expect("slot written exactly once");
            }
        }

        // Publish the fresh reports, then assemble in spec order.
        {
            let mut cache = self.cache.lock().expect("run cache poisoned");
            for (spec, slot) in todo.iter().zip(&fresh) {
                let report = slot.get().expect("worker filled every slot");
                cache.insert(spec.key.clone(), Arc::clone(report));
            }
        }
        resolution
            .into_iter()
            .map(|r| match r {
                Ok(report) => report,
                Err(slot) => Arc::clone(fresh[slot].get().expect("worker filled every slot")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TransferPlanBuilder;

    fn spec(system: &CellSystem, elem: u32, placement: Placement) -> RunSpec {
        let plan = Arc::new(
            TransferPlanBuilder::new()
                .get_from_memory(0, 64 << 10, elem, SyncPolicy::AfterAll)
                .build()
                .expect("valid plan"),
        );
        RunSpec::new(
            system,
            Workload {
                pattern: "mem-get",
                spes: 1,
                volume: 64 << 10,
                elem,
                list: false,
                sync: SyncPolicy::AfterAll,
            },
            placement,
            plan,
        )
    }

    #[test]
    fn results_are_in_spec_order_and_job_invariant() {
        let system = CellSystem::blade();
        let specs: Vec<RunSpec> = (0..6)
            .flat_map(|k| [2048u32, 16384].into_iter().map(move |elem| (k, elem)))
            .map(|(k, elem)| spec(&system, elem, Placement::lottery(11, k)))
            .collect();
        let serial = SweepExecutor::new(1).run(specs.clone());
        let parallel = SweepExecutor::new(4).run(specs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn duplicate_points_simulate_once() {
        let system = CellSystem::blade();
        let p = Placement::lottery(3, 0);
        let exec = SweepExecutor::new(2);
        let batch: Vec<RunSpec> = (0..4).map(|_| spec(&system, 4096, p)).collect();
        let reports = exec.run(batch);
        assert_eq!(exec.stats(), CacheStats { hits: 3, misses: 1 });
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        // A later batch with the same point is served entirely from cache.
        let again = exec.run(vec![spec(&system, 4096, p)]);
        assert_eq!(exec.stats().hits, 4);
        assert_eq!(again[0], reports[0]);
    }

    #[test]
    fn different_configs_do_not_collide() {
        let mut other = CellConfig::default();
        other.mfc.max_outstanding_packets = 2;
        assert_ne!(
            config_fingerprint(&CellConfig::default()),
            config_fingerprint(&other)
        );
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
