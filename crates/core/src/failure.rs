//! Typed fabric-run failures: what a stalled simulation looked like.
//!
//! A fabric run that cannot complete — it walked past its safety horizon,
//! churned events without simulated time advancing, or drained its event
//! queue with SPEs still holding work — used to abort the process with an
//! `assert!`. It now returns [`RunFailure::Stall`] carrying a
//! [`StallDiagnosis`]: per-SPE pending commands, MFC queue depth and slot
//! occupancy, in-flight packets by lifecycle phase, NACK/retry counters,
//! and the last cycle at which any payload was delivered. The diagnosis
//! renders as a human-readable dump ([`fmt::Display`]) and as
//! deterministic machine JSON ([`StallDiagnosis::to_json`]).

use std::fmt;

/// Why a fabric run could not produce a [`FabricReport`]
/// (crate::FabricReport).
#[derive(Debug, Clone, PartialEq)]
pub enum RunFailure {
    /// The simulation stalled; the diagnosis says where the work got
    /// stuck. Boxed so the error path costs one pointer on the happy
    /// path's `Result`.
    Stall(Box<StallDiagnosis>),
}

impl RunFailure {
    /// The stall diagnosis.
    pub fn diagnosis(&self) -> &StallDiagnosis {
        match self {
            RunFailure::Stall(d) => d,
        }
    }

    /// Machine-readable rendering (deterministic JSON, one line).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.diagnosis().to_json()
    }
}

impl fmt::Display for RunFailure {
    /// The full human-readable diagnosis dump (multi-line).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.diagnosis())
    }
}

impl std::error::Error for RunFailure {}

/// How the progress watchdog classified the stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Still generating events past the safety horizon: the run will not
    /// finish in bounded simulated time.
    HorizonExceeded,
    /// A zero-delay event storm: events kept firing without simulated
    /// time advancing.
    Livelock,
    /// The event queue drained with SPEs still holding queued or
    /// in-flight work: nothing will ever wake them.
    Deadlock,
}

impl StallKind {
    /// Stable kebab-case name (the JSON `kind` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallKind::HorizonExceeded => "horizon-exceeded",
            StallKind::Livelock => "livelock",
            StallKind::Deadlock => "deadlock",
        }
    }
}

/// Lifecycle phase of one bus packet, tracked from command issue to
/// retirement; a stalled run's diagnosis counts in-flight packets per
/// phase, which localizes the stuck resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketPhase {
    /// On the command bus (issue + snoop).
    Command,
    /// Waiting for source data (a DRAM read or Local-Store access).
    SourceWait,
    /// A memory PUT refused by its bank's backlog horizon.
    MemWait,
    /// Queued at the EIB data arbiter.
    EibQueue,
    /// Granted a ring; payload moving.
    OnWire,
    /// Delivered memory PUT whose DRAM write has not retired yet.
    DramWrite,
    /// Done: delivered (or abandoned) and its MFC slot freed.
    Retired,
}

impl PacketPhase {
    /// The in-flight phases, in lifecycle order (excludes
    /// [`PacketPhase::Retired`]).
    pub const IN_FLIGHT: [PacketPhase; 6] = [
        PacketPhase::Command,
        PacketPhase::SourceWait,
        PacketPhase::MemWait,
        PacketPhase::EibQueue,
        PacketPhase::OnWire,
        PacketPhase::DramWrite,
    ];

    /// Stable kebab-case name (the JSON phase keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PacketPhase::Command => "command",
            PacketPhase::SourceWait => "source-wait",
            PacketPhase::MemWait => "mem-wait",
            PacketPhase::EibQueue => "eib-queue",
            PacketPhase::OnWire => "on-wire",
            PacketPhase::DramWrite => "dram-write",
            PacketPhase::Retired => "retired",
        }
    }
}

/// One SPE's snapshot at the moment the stall was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeStall {
    /// Logical SPE index.
    pub spe: usize,
    /// Physical SPE this run mapped it to.
    pub physical: u8,
    /// The stall-partition state name (`"busy"`, `"stall-mem"`, …).
    pub state: &'static str,
    /// Plan commands not yet fed into the MFC.
    pub pending_commands: usize,
    /// Commands sitting in the MFC queue.
    pub mfc_queue_depth: usize,
    /// Outstanding-slot occupancy (packets in flight).
    pub outstanding: usize,
    /// The effective slot budget (after any fault-plan slot limit).
    pub slot_budget: usize,
    /// Blocked on a tag-group sync.
    pub waiting_sync: bool,
    /// This SPE's packets queued at the EIB data arbiter.
    pub packets_waiting_eib: u32,
    /// This SPE's PUT packets refused by a bank's backlog horizon.
    pub packets_waiting_mem: u32,
    /// The last cycle this SPE saw a payload delivered (0 if never).
    pub last_delivery_cycle: u64,
}

impl SpeStall {
    /// True when this SPE still holds work (the interesting rows of a
    /// diagnosis dump).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.pending_commands > 0 || self.mfc_queue_depth > 0 || self.outstanding > 0
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"spe\":{},\"physical\":{},\"state\":\"{}\",\
             \"pending_commands\":{},\"mfc_queue_depth\":{},\
             \"outstanding\":{},\"slot_budget\":{},\"waiting_sync\":{},\
             \"packets_waiting_eib\":{},\"packets_waiting_mem\":{},\
             \"last_delivery_cycle\":{}}}",
            self.spe,
            self.physical,
            self.state,
            self.pending_commands,
            self.mfc_queue_depth,
            self.outstanding,
            self.slot_budget,
            self.waiting_sync,
            self.packets_waiting_eib,
            self.packets_waiting_mem,
            self.last_delivery_cycle
        )
    }
}

/// Everything the fabric knew when its progress watchdog tripped.
///
/// The human rendering is [`fmt::Display`]; the machine rendering is
/// [`StallDiagnosis::to_json`] (deterministic: pure integers and fixed
/// key order, so equal diagnoses render byte-identically).
#[derive(Debug, Clone, PartialEq)]
pub struct StallDiagnosis {
    /// What tripped the watchdog.
    pub kind: StallKind,
    /// Simulated time at detection.
    pub at_cycle: u64,
    /// The safety horizon the run was given.
    pub horizon: u64,
    /// The last cycle at which any SPE saw a delivery (0 if none ever).
    pub last_progress_cycle: u64,
    /// Events the simulation processed in total.
    pub events_processed: u64,
    /// Events processed since simulated time last advanced.
    pub events_since_progress: u64,
    /// Bus packets fully delivered before the stall.
    pub delivered_packets: u64,
    /// Bus packets issued but not retired, per in-flight phase, in
    /// [`PacketPhase::IN_FLIGHT`] order.
    pub packets_by_phase: [u64; 6],
    /// Transient bank NACKs observed.
    pub nacks: u64,
    /// Backoff retries performed.
    pub retries: u64,
    /// Commands whose retry budget ran out.
    pub retries_exhausted: u64,
    /// Per-logical-SPE snapshots, for every SPE of the plan.
    pub per_spe: Vec<SpeStall>,
}

impl StallDiagnosis {
    /// Total in-flight packets across all phases.
    #[must_use]
    pub fn packets_in_flight(&self) -> u64 {
        self.packets_by_phase.iter().sum()
    }

    /// Deterministic machine JSON (one line, fixed key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = PacketPhase::IN_FLIGHT
            .iter()
            .zip(&self.packets_by_phase)
            .map(|(p, n)| format!("\"{}\":{n}", p.name()))
            .collect();
        let spes: Vec<String> = self.per_spe.iter().map(SpeStall::to_json).collect();
        format!(
            "{{\"kind\":\"{}\",\"at_cycle\":{},\"horizon\":{},\
             \"last_progress_cycle\":{},\"events_processed\":{},\
             \"events_since_progress\":{},\"delivered_packets\":{},\
             \"packets_in_flight\":{},\"packets_by_phase\":{{{}}},\
             \"faults\":{{\"nacks\":{},\"retries\":{},\
             \"retries_exhausted\":{}}},\"per_spe\":[{}]}}",
            self.kind.name(),
            self.at_cycle,
            self.horizon,
            self.last_progress_cycle,
            self.events_processed,
            self.events_since_progress,
            self.delivered_packets,
            self.packets_in_flight(),
            phases.join(","),
            self.nacks,
            self.retries,
            self.retries_exhausted,
            spes.join(",")
        )
    }
}

impl fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fabric stall ({}) at cycle {} (horizon {}), last progress at cycle {}",
            self.kind.name(),
            self.at_cycle,
            self.horizon,
            self.last_progress_cycle
        )?;
        writeln!(
            f,
            "  events: {} processed, {} since last progress; packets: {} delivered, {} in flight",
            self.events_processed,
            self.events_since_progress,
            self.delivered_packets,
            self.packets_in_flight()
        )?;
        let phases: Vec<String> = PacketPhase::IN_FLIGHT
            .iter()
            .zip(&self.packets_by_phase)
            .filter(|&(_, &n)| n > 0)
            .map(|(p, n)| format!("{} {n}", p.name()))
            .collect();
        if !phases.is_empty() {
            writeln!(f, "  in flight by phase: {}", phases.join(", "))?;
        }
        if self.nacks > 0 || self.retries > 0 || self.retries_exhausted > 0 {
            writeln!(
                f,
                "  faults: {} NACKs, {} retries, {} exhausted",
                self.nacks, self.retries, self.retries_exhausted
            )?;
        }
        for s in &self.per_spe {
            if !s.is_busy() {
                continue;
            }
            writeln!(
                f,
                "  SPE{} (phys {}): {}, {} plan commands pending, MFC queue {}, \
                 slots {}/{}{}, eib-wait {}, mem-wait {}, last delivery cycle {}",
                s.spe,
                s.physical,
                s.state,
                s.pending_commands,
                s.mfc_queue_depth,
                s.outstanding,
                s.slot_budget,
                if s.waiting_sync { ", sync-wait" } else { "" },
                s.packets_waiting_eib,
                s.packets_waiting_mem,
                s.last_delivery_cycle
            )?;
        }
        let idle = self.per_spe.iter().filter(|s| !s.is_busy()).count();
        if idle > 0 {
            writeln!(f, "  ({idle} SPEs idle/complete)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StallDiagnosis {
        StallDiagnosis {
            kind: StallKind::HorizonExceeded,
            at_cycle: 123,
            horizon: 1000,
            last_progress_cycle: 120,
            events_processed: 40,
            events_since_progress: 2,
            delivered_packets: 3,
            packets_by_phase: [0, 2, 1, 0, 0, 0],
            nacks: 5,
            retries: 4,
            retries_exhausted: 1,
            per_spe: vec![
                SpeStall {
                    spe: 0,
                    physical: 3,
                    state: "stall-mem",
                    pending_commands: 2,
                    mfc_queue_depth: 1,
                    outstanding: 3,
                    slot_budget: 8,
                    waiting_sync: false,
                    packets_waiting_eib: 0,
                    packets_waiting_mem: 1,
                    last_delivery_cycle: 120,
                },
                SpeStall {
                    spe: 1,
                    physical: 1,
                    state: "idle",
                    pending_commands: 0,
                    mfc_queue_depth: 0,
                    outstanding: 0,
                    slot_budget: 8,
                    waiting_sync: false,
                    packets_waiting_eib: 0,
                    packets_waiting_mem: 0,
                    last_delivery_cycle: 80,
                },
            ],
        }
    }

    #[test]
    fn dump_names_the_stuck_spe_and_elides_idle_ones() {
        let text = sample().to_string();
        assert!(text.contains("horizon-exceeded"));
        assert!(text.contains("SPE0 (phys 3): stall-mem"));
        assert!(text.contains("slots 3/8"));
        assert!(text.contains("source-wait 2"));
        assert!(text.contains("5 NACKs"));
        assert!(!text.contains("SPE1"));
        assert!(text.contains("(1 SPEs idle/complete)"));
    }

    #[test]
    fn json_parses_back_with_every_field() {
        let d = sample();
        let v = crate::json::parse(&d.to_json()).expect("diagnosis JSON parses");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("horizon-exceeded"));
        assert_eq!(v.get("at_cycle").unwrap().as_u64(), Some(123));
        assert_eq!(v.get("packets_in_flight").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("packets_by_phase")
                .unwrap()
                .get("source-wait")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            v.get("faults").unwrap().get("nacks").unwrap().as_u64(),
            Some(5)
        );
        let spes = v.get("per_spe").unwrap().as_array().unwrap();
        assert_eq!(spes.len(), 2);
        assert_eq!(spes[0].get("state").unwrap().as_str(), Some("stall-mem"));
        assert_eq!(spes[0].get("slot_budget").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn failure_display_is_the_diagnosis_dump() {
        let failure = RunFailure::Stall(Box::new(sample()));
        assert_eq!(failure.to_string(), sample().to_string());
        assert_eq!(failure.to_json(), sample().to_json());
    }
}
