//! Result tables: figures, series, and placement-spread summaries.
//!
//! Every experiment in [`crate::experiments`] renders into one of two
//! shapes, matching the paper's plots:
//!
//! * [`Figure`] — bandwidth (GB/s) versus a swept parameter, one
//!   [`Series`] per configuration (e.g. "2 SPEs", "1 thread");
//! * [`SpreadFigure`] — min/median/mean/max over random SPE placements
//!   per swept parameter (the paper's Figures 13 and 16).

use std::fmt;

use cellsim_kernel::stats::Summary;
use cellsim_mfc::DmaPhase;

use crate::latency::{DmaPathClass, LatencyHistogram};
use crate::metrics::MetricsSummary;

/// One plotted point: a swept-parameter label and a bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// The x value, already formatted ("128 B", "2 threads", …).
    pub x: String,
    /// Bandwidth in GB/s.
    pub gbps: f64,
}

/// One curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("2 SPEs", "load 1 thread", …).
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

/// A reproduced figure: bandwidth versus a swept parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper identifier ("3a", "8c", "15b", "§4.2.2", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// The curves. Every series must cover the same x values, in order.
    pub series: Vec<Series>,
}

impl Figure {
    /// Bandwidth at (`series_label`, `x`), if present — convenient for
    /// assertions.
    pub fn value(&self, series_label: &str, x: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == series_label)?
            .points
            .iter()
            .find(|p| p.x == x)
            .map(|p| p.gbps)
    }
}

impl fmt::Display for Figure {
    /// Renders an aligned text table: rows are x values, columns series.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure {} — {} (GB/s)", self.id, self.title)?;
        let xs: Vec<&str> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x.as_str()).collect())
            .unwrap_or_default();
        let x_width = xs
            .iter()
            .map(|x| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8);
        let widths: Vec<usize> = self.series.iter().map(|s| s.label.len().max(7)).collect();
        write!(f, "  {:<x_width$}", self.x_label)?;
        for (s, w) in self.series.iter().zip(&widths) {
            write!(f, "  {:>w$}", s.label)?;
        }
        writeln!(f)?;
        for (row, x) in xs.iter().enumerate() {
            write!(f, "  {x:<x_width$}")?;
            for (s, w) in self.series.iter().zip(&widths) {
                match s.points.get(row) {
                    Some(p) => write!(f, "  {:>w$.2}", p.gbps)?,
                    None => write!(f, "  {:>w$}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A placement-sensitivity figure: per x value, the min/median/mean/max
/// bandwidth over random logical→physical SPE placements.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadFigure {
    /// Paper identifier ("13a", "16b", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// One summary row per swept value.
    pub rows: Vec<(String, Summary)>,
}

impl SpreadFigure {
    /// The largest max−min spread across rows — the headline
    /// placement-sensitivity number.
    pub fn max_spread(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, s)| s.spread())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for SpreadFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure {} — {} (GB/s over placements)",
            self.id, self.title
        )?;
        let x_width = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8);
        writeln!(
            f,
            "  {:<x_width$}  {:>8}  {:>8}  {:>8}  {:>8}",
            self.x_label, "min", "median", "mean", "max"
        )?;
        for (x, s) in &self.rows {
            writeln!(
                f,
                "  {x:<x_width$}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}",
                s.min, s.median, s.mean, s.max
            )?;
        }
        Ok(())
    }
}

/// RFC-4180 minimal quoting: fields with a comma, quote or newline are
/// wrapped in double quotes, with inner quotes doubled.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Figure {
    /// Renders the figure as CSV: header `x,<series...>`, one row per
    /// swept value. Ready for any plotting tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_field(&self.x_label));
        for s in &self.series {
            out.push(',');
            out.push_str(&csv_field(&s.label));
        }
        out.push('\n');
        let rows = self.series.first().map_or(0, |s| s.points.len());
        for row in 0..rows {
            out.push_str(&csv_field(&self.series[0].points[row].x));
            for s in &self.series {
                out.push(',');
                match s.points.get(row) {
                    Some(p) => out.push_str(&format!("{:.4}", p.gbps)),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl SpreadFigure {
    /// Renders the spread figure as CSV with min/median/mean/max columns.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},min,median,mean,max\n", csv_field(&self.x_label));
        for (x, s) in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4}\n",
                csv_field(x),
                s.min,
                s.median,
                s.mean,
                s.max
            ));
        }
        out
    }
}

/// A figure's fabric-contention digest: the [`MetricsSummary`] over
/// exactly the runs that produced the figure, tagged with the figure id
/// and renderable as an aligned text table, CSV, and JSON.
///
/// The Display form reads the way the paper argues: cycle shares first
/// (what limited each SPE), then the Little's-law occupancy account of
/// the MFC outstanding budget, then where the traffic landed (rings,
/// banks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsTable {
    /// Paper identifier of the figure the digest covers ("8", "10", …).
    pub id: String,
    /// The counters, summed over the figure's whole sweep.
    pub summary: MetricsSummary,
}

impl MetricsTable {
    fn pct(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    }

    /// Renders the digest as `metric,value` CSV, one counter per row
    /// (histogram buckets and per-ring/per-bank counters included).
    pub fn to_csv(&self) -> String {
        let s = &self.summary;
        let m = &s.spe;
        let mut out = String::from("metric,value\n");
        let mut row = |k: &str, v: String| {
            out.push_str(&csv_field(k));
            out.push(',');
            out.push_str(&csv_field(&v));
            out.push('\n');
        };
        row("figure", self.id.clone());
        row("runs", s.runs.to_string());
        row("run_cycles", s.run_cycles.to_string());
        row("events", s.events.to_string());
        row("packets", s.packets.to_string());
        row("suppressed_pumps", s.suppressed_pumps.to_string());
        row("peak_live_packets", s.peak_live_packets.to_string());
        row("busy_cycles", m.busy_cycles.to_string());
        row("idle_cycles", m.idle_cycles.to_string());
        row("stall_mfc_full_cycles", m.stall_mfc_full_cycles.to_string());
        row("stall_sync_cycles", m.stall_sync_cycles.to_string());
        row("stall_eib_cycles", m.stall_eib_cycles.to_string());
        row("stall_mem_cycles", m.stall_mem_cycles.to_string());
        row(
            "occupancy_mean_inflight",
            format!("{:.4}", s.occupancy_mean_inflight()),
        );
        row(
            "occupancy_saturated_share",
            format!("{:.4}", s.occupancy_saturated_share()),
        );
        row("dominant_stall", s.dominant_stall().0.to_string());
        for (cause, &n) in crate::metrics::STALL_CAUSES.iter().zip(&s.limiter_runs) {
            row(
                &format!("runs_limited_by_{}", cause.replace('-', "_")),
                n.to_string(),
            );
        }
        row("runs_unstalled", s.unstalled_runs.to_string());
        for (k, &cycles) in m.occupancy_cycles.iter().enumerate() {
            row(&format!("occupancy_cycles_{k}"), cycles.to_string());
        }
        for (i, ring) in s.rings.iter().enumerate() {
            row(&format!("ring_{i}_grants"), ring.grants.to_string());
            row(&format!("ring_{i}_bytes"), ring.bytes.to_string());
            row(
                &format!("ring_{i}_busy_cycles"),
                ring.busy_cycles.to_string(),
            );
        }
        for b in &s.banks {
            let name = format!("{:?}", b.bank).to_lowercase();
            row(
                &format!("bank_{name}_accesses"),
                b.stats.accesses.to_string(),
            );
            row(&format!("bank_{name}_bytes"), b.stats.bytes.to_string());
            row(
                &format!("bank_{name}_busy_cycles"),
                b.stats.busy_cycles.to_string(),
            );
            row(
                &format!("bank_{name}_conflicts"),
                b.stats.conflicts.to_string(),
            );
            row(
                &format!("bank_{name}_turnaround_cycles"),
                b.stats.turnaround_cycles.to_string(),
            );
            row(
                &format!("bank_{name}_refresh_cycles"),
                b.stats.refresh_cycles.to_string(),
            );
        }
        // Fault digest: always emitted (zeros included on a healthy run)
        // so the column set is schema-stable.
        row("fault_nacks", s.faults.nacks.to_string());
        row("fault_retries", s.faults.retries.to_string());
        row(
            "fault_retries_exhausted",
            s.faults.retries_exhausted.to_string(),
        );
        row(
            "fault_abandoned_packets",
            s.faults.abandoned_packets.to_string(),
        );
        row(
            "fault_degraded_cycles",
            s.faults.degraded_cycles.to_string(),
        );
        // Latency digest: every path and phase is always emitted (zeros
        // included) so the column set is schema-stable.
        for (pi, path) in DmaPathClass::ALL.iter().enumerate() {
            let p = &s.latency.paths[pi];
            let key = path.name().replace('-', "_");
            let h = &p.end_to_end;
            row(&format!("latency_{key}_commands"), p.commands.to_string());
            row(&format!("latency_{key}_nacks"), p.nacks.to_string());
            row(&format!("latency_{key}_retries"), p.retries.to_string());
            row(
                &format!("latency_{key}_retry_backoff_cycles"),
                p.retry_backoff_cycles.to_string(),
            );
            row(
                &format!("latency_{key}_exhausted_commands"),
                p.exhausted_commands.to_string(),
            );
            row(&format!("latency_{key}_p50"), h.percentile(50).to_string());
            row(&format!("latency_{key}_p95"), h.percentile(95).to_string());
            row(&format!("latency_{key}_p99"), h.percentile(99).to_string());
            row(&format!("latency_{key}_max"), h.max.to_string());
            row(&format!("latency_{key}_mean"), h.mean().to_string());
            for (phase, &cycles) in DmaPhase::ALL.iter().zip(&p.phase_cycles) {
                let pk = phase.name().replace('-', "_");
                row(&format!("latency_{key}_phase_{pk}"), cycles.to_string());
            }
            for (phase, &n) in DmaPhase::ALL.iter().zip(&p.dominant_counts) {
                let pk = phase.name().replace('-', "_");
                row(&format!("latency_{key}_dominant_{pk}"), n.to_string());
            }
        }
        let es = &s.latency.element_service;
        row("latency_element_service_count", es.count.to_string());
        row("latency_element_service_p50", es.percentile(50).to_string());
        row("latency_element_service_p95", es.percentile(95).to_string());
        row("latency_element_service_p99", es.percentile(99).to_string());
        row("latency_element_service_max", es.max.to_string());
        out
    }

    /// One histogram as a JSON object with its digest percentiles and
    /// the log2 bucket counts (trailing zero buckets trimmed — a pure
    /// function of the counts, so still deterministic).
    fn hist_json(h: &LatencyHistogram) -> String {
        let last = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let buckets: Vec<String> = h.buckets[..last].iter().map(u64::to_string).collect();
        format!(
            "{{\"count\":{},\"total\":{},\"max\":{},\"p50\":{},\"p95\":{},\
             \"p99\":{},\"buckets\":[{}]}}",
            h.count,
            h.total,
            h.max,
            h.percentile(50),
            h.percentile(95),
            h.percentile(99),
            buckets.join(",")
        )
    }

    /// Renders the digest as a JSON object (hand-rolled; every value is
    /// an integer, a string, or an exact-format float, so the output is
    /// byte-deterministic).
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let m = &s.spe;
        let occ: Vec<String> = m.occupancy_cycles.iter().map(u64::to_string).collect();
        let rings: Vec<String> = s
            .rings
            .iter()
            .map(|r| {
                format!(
                    "{{\"grants\":{},\"bytes\":{},\"busy_cycles\":{}}}",
                    r.grants, r.bytes, r.busy_cycles
                )
            })
            .collect();
        let banks: Vec<String> = s
            .banks
            .iter()
            .map(|b| {
                format!(
                    "{{\"bank\":\"{}\",\"accesses\":{},\"bytes\":{},\
                     \"busy_cycles\":{},\"conflicts\":{},\
                     \"turnaround_cycles\":{},\"refresh_cycles\":{}}}",
                    format!("{:?}", b.bank).to_lowercase(),
                    b.stats.accesses,
                    b.stats.bytes,
                    b.stats.busy_cycles,
                    b.stats.conflicts,
                    b.stats.turnaround_cycles,
                    b.stats.refresh_cycles
                )
            })
            .collect();
        let paths: Vec<String> = DmaPathClass::ALL
            .iter()
            .enumerate()
            .map(|(pi, path)| {
                let p = &s.latency.paths[pi];
                let phases: Vec<String> = DmaPhase::ALL
                    .iter()
                    .zip(&p.phase_cycles)
                    .map(|(phase, n)| format!("\"{}\":{n}", phase.name()))
                    .collect();
                let dominant: Vec<String> = DmaPhase::ALL
                    .iter()
                    .zip(&p.dominant_counts)
                    .map(|(phase, n)| format!("\"{}\":{n}", phase.name()))
                    .collect();
                format!(
                    "{{\"path\":\"{}\",\"commands\":{},\"nacks\":{},\
                     \"retries\":{},\"retry_backoff_cycles\":{},\
                     \"exhausted_commands\":{},\"end_to_end\":{},\
                     \"phase_cycles\":{{{}}},\"dominant_commands\":{{{}}}}}",
                    path.name(),
                    p.commands,
                    p.nacks,
                    p.retries,
                    p.retry_backoff_cycles,
                    p.exhausted_commands,
                    Self::hist_json(&p.end_to_end),
                    phases.join(","),
                    dominant.join(",")
                )
            })
            .collect();
        format!(
            "{{\"figure\":\"{}\",\"runs\":{},\"run_cycles\":{},\
             \"events\":{},\"packets\":{},\"suppressed_pumps\":{},\
             \"peak_live_packets\":{},\
             \"spe\":{{\"busy_cycles\":{},\"idle_cycles\":{},\
             \"stall_mfc_full_cycles\":{},\"stall_sync_cycles\":{},\
             \"stall_eib_cycles\":{},\"stall_mem_cycles\":{},\
             \"occupancy_cycles\":[{}]}},\
             \"occupancy_mean_inflight\":{:.4},\
             \"occupancy_saturated_share\":{:.4},\
             \"dominant_stall\":\"{}\",\
             \"runs_limited_by\":{{{}}},\"runs_unstalled\":{},\
             \"rings\":[{}],\"banks\":[{}],\
             \"faults\":{{\"nacks\":{},\"retries\":{},\
             \"retries_exhausted\":{},\"abandoned_packets\":{},\
             \"degraded_cycles\":{}}},\
             \"latency\":{{\"paths\":[{}],\"element_service\":{}}}}}",
            self.id.replace('\\', "\\\\").replace('"', "\\\""),
            s.runs,
            s.run_cycles,
            s.events,
            s.packets,
            s.suppressed_pumps,
            s.peak_live_packets,
            m.busy_cycles,
            m.idle_cycles,
            m.stall_mfc_full_cycles,
            m.stall_sync_cycles,
            m.stall_eib_cycles,
            m.stall_mem_cycles,
            occ.join(","),
            s.occupancy_mean_inflight(),
            s.occupancy_saturated_share(),
            s.dominant_stall().0,
            crate::metrics::STALL_CAUSES
                .iter()
                .zip(&s.limiter_runs)
                .map(|(cause, n)| format!("\"{cause}\":{n}"))
                .collect::<Vec<_>>()
                .join(","),
            s.unstalled_runs,
            rings.join(","),
            banks.join(","),
            s.faults.nacks,
            s.faults.retries,
            s.faults.retries_exhausted,
            s.faults.abandoned_packets,
            s.faults.degraded_cycles,
            paths.join(","),
            Self::hist_json(&s.latency.element_service)
        )
    }
}

impl fmt::Display for MetricsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.summary;
        let m = &s.spe;
        let spe_cycles = s.spe_cycles();
        writeln!(
            f,
            "Metrics {} — fabric digest over {} runs ({} bus cycles)",
            self.id, s.runs, s.run_cycles
        )?;
        writeln!(
            f,
            "  SPE cycles  busy {:.1}%  idle {:.1}%  stalled {:.1}% \
             (mfc-slots {:.1}%, sync {:.1}%, eib {:.1}%, mem {:.1}%)",
            Self::pct(m.busy_cycles, spe_cycles),
            Self::pct(m.idle_cycles, spe_cycles),
            Self::pct(m.stall_cycles(), spe_cycles),
            Self::pct(m.stall_mfc_full_cycles, spe_cycles),
            Self::pct(m.stall_sync_cycles, spe_cycles),
            Self::pct(m.stall_eib_cycles, spe_cycles),
            Self::pct(m.stall_mem_cycles, spe_cycles),
        )?;
        let (cause, cycles) = s.dominant_stall();
        writeln!(
            f,
            "  MFC slots   mean {:.2} in flight, {:.1}% of in-flight time \
             saturated; dominant stall: {cause} ({cycles} cycles)",
            s.occupancy_mean_inflight(),
            100.0 * s.occupancy_saturated_share(),
        )?;
        // mfc-slots, eib and mem stalls all require a saturated
        // outstanding budget (that is when the state machine can enter
        // them), so group them: when they dominate, the bandwidth
        // limiter is slot saturation — Little's law — and the detail
        // says what kept the slots occupied.
        let [wire, sync, eib, mem] = s.limiter_runs;
        let mut limiters = Vec::new();
        if wire + eib + mem > 0 {
            let detail: Vec<String> = [("wire", wire), ("eib", eib), ("mem", mem)]
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(k, n)| format!("{k} {n}"))
                .collect();
            limiters.push(format!(
                "slots-full {} ({})",
                wire + eib + mem,
                detail.join(", ")
            ));
        }
        if sync > 0 {
            limiters.push(format!("sync {sync}"));
        }
        if s.unstalled_runs > 0 {
            limiters.push(format!("none {}", s.unstalled_runs));
        }
        writeln!(
            f,
            "  limiter     runs by dominant stall: {}",
            limiters.join(", ")
        )?;
        // Fault digest (elided on healthy runs; CSV/JSON always carry it).
        if s.faults.any() {
            writeln!(
                f,
                "  faults      {} NACKs → {} retried, {} exhausted \
                 ({} packets abandoned); degraded {:.1}% of run",
                s.faults.nacks,
                s.faults.retries,
                s.faults.retries_exhausted,
                s.faults.abandoned_packets,
                Self::pct(s.faults.degraded_cycles, s.run_cycles),
            )?;
        }
        // Per-path latency digest (empty paths elided from the human
        // view; CSV/JSON always carry all four).
        for (pi, path) in DmaPathClass::ALL.iter().enumerate() {
            let p = &s.latency.paths[pi];
            if p.commands == 0 {
                continue;
            }
            let h = &p.end_to_end;
            let dom = DmaPhase::ALL
                .iter()
                .zip(&p.dominant_counts)
                .max_by_key(|&(_, n)| n)
                .map(|(phase, _)| phase.name())
                .unwrap_or("none");
            writeln!(
                f,
                "  lat {:<8} {} cmds  p50/p95/p99/max {}/{}/{}/{} cyc  \
                 phases q/s/r/b {:.0}%/{:.0}%/{:.0}%/{:.0}%  dominant {}",
                path.name(),
                p.commands,
                h.percentile(50),
                h.percentile(95),
                h.percentile(99),
                h.max,
                Self::pct(p.phase_cycles[0], h.total),
                Self::pct(p.phase_cycles[1], h.total),
                Self::pct(p.phase_cycles[2], h.total),
                Self::pct(p.phase_cycles[3], h.total),
                dom,
            )?;
        }
        for (i, ring) in s.rings.iter().enumerate() {
            writeln!(
                f,
                "  ring {i}      {} in {} grants, busy {:.1}%",
                format_bytes(ring.bytes),
                ring.grants,
                Self::pct(ring.busy_cycles, s.run_cycles),
            )?;
        }
        for b in &s.banks {
            writeln!(
                f,
                "  bank {:<6} {} in {} accesses, busy {:.1}%, {} conflicts",
                format!("{:?}", b.bank).to_lowercase(),
                format_bytes(b.stats.bytes),
                b.stats.accesses,
                Self::pct(b.stats.busy_cycles, s.run_cycles),
                b.stats.conflicts,
            )?;
        }
        Ok(())
    }
}

/// Formats a byte count the way the paper labels its x axes.
pub fn format_bytes(bytes: u64) -> String {
    const MB: u64 = 1024 * 1024;
    if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{} MB", bytes / MB)
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{} KB", bytes / 1024)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        Figure {
            id: "t1".into(),
            title: "test".into(),
            x_label: "elem".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![
                        Point {
                            x: "128 B".into(),
                            gbps: 1.5,
                        },
                        Point {
                            x: "1 KB".into(),
                            gbps: 3.25,
                        },
                    ],
                },
                Series {
                    label: "b".into(),
                    points: vec![
                        Point {
                            x: "128 B".into(),
                            gbps: 2.0,
                        },
                        Point {
                            x: "1 KB".into(),
                            gbps: 4.0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn value_lookup_finds_cells() {
        let fig = sample_figure();
        assert_eq!(fig.value("a", "1 KB"), Some(3.25));
        assert_eq!(fig.value("b", "128 B"), Some(2.0));
        assert_eq!(fig.value("c", "128 B"), None);
        assert_eq!(fig.value("a", "2 KB"), None);
    }

    #[test]
    fn figure_renders_all_cells() {
        let text = sample_figure().to_string();
        assert!(text.contains("Figure t1"));
        assert!(text.contains("128 B"));
        assert!(text.contains("3.25"));
        assert!(text.contains("4.00"));
    }

    #[test]
    fn spread_figure_renders_and_spreads() {
        let fig = SpreadFigure {
            id: "t2".into(),
            title: "spread".into(),
            x_label: "elem".into(),
            rows: vec![(
                "1 KB".into(),
                Summary::from_samples(&[1.0, 5.0, 3.0]).unwrap(),
            )],
        };
        assert_eq!(fig.max_spread(), 4.0);
        let text = fig.to_string();
        assert!(text.contains("median"));
        assert!(text.contains("5.00"));
    }

    #[test]
    fn csv_round_trips_structure() {
        let csv = sample_figure().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("elem,a,b"));
        assert_eq!(lines.next(), Some("128 B,1.5000,2.0000"));
        assert_eq!(lines.next(), Some("1 KB,3.2500,4.0000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn spread_csv_has_summary_columns() {
        let fig = SpreadFigure {
            id: "t3".into(),
            title: "spread".into(),
            x_label: "elem".into(),
            rows: vec![("2 KB".into(), Summary::from_samples(&[2.0, 4.0]).unwrap())],
        };
        let csv = fig.to_csv();
        assert!(csv.starts_with("elem,min,median,mean,max\n"));
        assert!(csv.contains("2 KB,2.0000,3.0000,3.0000,4.0000"));
    }

    #[test]
    fn byte_formatting_matches_paper_axes() {
        assert_eq!(format_bytes(128), "128 B");
        assert_eq!(format_bytes(1024), "1 KB");
        assert_eq!(format_bytes(16384), "16 KB");
        assert_eq!(format_bytes(100), "100 B");
        assert_eq!(format_bytes(32 << 20), "32 MB");
        assert_eq!(format_bytes((1 << 20) + 1024), "1025 KB");
    }

    #[test]
    fn csv_fields_with_delimiters_are_quoted() {
        let mut fig = sample_figure();
        fig.series[0].label = "every 1, eager".into();
        fig.x_label = "elem \"raw\"".into();
        let csv = fig.to_csv();
        assert_eq!(
            csv.lines().next(),
            Some("\"elem \"\"raw\"\"\",\"every 1, eager\",b")
        );
        // Unremarkable fields stay bare.
        assert!(csv.contains("\n128 B,"));
    }

    #[test]
    fn metrics_table_renders_all_three_shapes() {
        use crate::metrics::{FabricMetrics, SpeMetrics};
        let mut summary = MetricsSummary::default();
        summary.accumulate(&FabricMetrics {
            run_cycles: 100,
            per_spe: vec![SpeMetrics {
                busy_cycles: 30,
                idle_cycles: 10,
                stall_mfc_full_cycles: 60,
                occupancy_cycles: vec![40, 10, 50],
                ..SpeMetrics::default()
            }],
            rings: vec![cellsim_eib::RingStats {
                grants: 4,
                bytes: 512,
                busy_cycles: 32,
            }],
            banks: vec![crate::metrics::BankMetrics {
                bank: cellsim_mem::BankId::Local,
                stats: cellsim_mem::BankStats {
                    accesses: 4,
                    bytes: 512,
                    busy_cycles: 32,
                    conflicts: 2,
                    ..cellsim_mem::BankStats::default()
                },
            }],
            ..FabricMetrics::default()
        });
        let table = MetricsTable {
            id: "10".into(),
            summary,
        };

        let text = table.to_string();
        assert!(text.contains("Metrics 10"));
        assert!(text.contains("busy 30.0%"));
        assert!(text.contains("dominant stall: mfc-slots (60 cycles)"));
        assert!(text.contains("runs by dominant stall: slots-full 1 (wire 1)"));
        assert!(text.contains("bank local"));

        // Healthy run: the human view elides the fault line; CSV/JSON
        // still carry the (zero) fault schema.
        assert!(!text.contains("faults"));

        let csv = table.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("stall_mfc_full_cycles,60\n"));
        assert!(csv.contains("fault_nacks,0\n"));
        assert!(csv.contains("fault_degraded_cycles,0\n"));
        assert!(csv.contains("latency_mem_get_retries,0\n"));
        assert!(csv.contains("runs_limited_by_mfc_slots,1\n"));
        assert!(csv.contains("occupancy_cycles_2,50\n"));
        assert!(csv.contains("ring_0_bytes,512\n"));
        assert!(csv.contains("bank_local_conflicts,2\n"));

        let json = table.to_json();
        assert!(json.starts_with("{\"figure\":\"10\","));
        assert!(json.contains("\"occupancy_cycles\":[40,10,50]"));
        assert!(json.contains("\"dominant_stall\":\"mfc-slots\""));
        assert!(json.contains(
            "\"runs_limited_by\":{\"mfc-slots\":1,\"sync\":0,\"eib\":0,\"mem\":0},\
             \"runs_unstalled\":0"
        ));
        assert!(json.contains("\"bank\":\"local\""));
        assert!(json.contains(
            "\"faults\":{\"nacks\":0,\"retries\":0,\"retries_exhausted\":0,\
             \"abandoned_packets\":0,\"degraded_cycles\":0}"
        ));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn metrics_table_json_parses_back() {
        let table = MetricsTable {
            id: "8".into(),
            summary: MetricsSummary::default(),
        };
        let v = crate::json::parse(&table.to_json()).unwrap();
        assert_eq!(v.get("figure").unwrap().as_str(), Some("8"));
        assert_eq!(
            v.get("latency")
                .unwrap()
                .get("paths")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            4
        );
    }
}
