//! Result tables: figures, series, and placement-spread summaries.
//!
//! Every experiment in [`crate::experiments`] renders into one of two
//! shapes, matching the paper's plots:
//!
//! * [`Figure`] — bandwidth (GB/s) versus a swept parameter, one
//!   [`Series`] per configuration (e.g. "2 SPEs", "1 thread");
//! * [`SpreadFigure`] — min/median/mean/max over random SPE placements
//!   per swept parameter (the paper's Figures 13 and 16).

use std::fmt;

use cellsim_kernel::stats::Summary;

/// One plotted point: a swept-parameter label and a bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// The x value, already formatted ("128 B", "2 threads", …).
    pub x: String,
    /// Bandwidth in GB/s.
    pub gbps: f64,
}

/// One curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("2 SPEs", "load 1 thread", …).
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

/// A reproduced figure: bandwidth versus a swept parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper identifier ("3a", "8c", "15b", "§4.2.2", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// The curves. Every series must cover the same x values, in order.
    pub series: Vec<Series>,
}

impl Figure {
    /// Bandwidth at (`series_label`, `x`), if present — convenient for
    /// assertions.
    pub fn value(&self, series_label: &str, x: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == series_label)?
            .points
            .iter()
            .find(|p| p.x == x)
            .map(|p| p.gbps)
    }
}

impl fmt::Display for Figure {
    /// Renders an aligned text table: rows are x values, columns series.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure {} — {} (GB/s)", self.id, self.title)?;
        let xs: Vec<&str> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x.as_str()).collect())
            .unwrap_or_default();
        let x_width = xs
            .iter()
            .map(|x| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8);
        let widths: Vec<usize> = self.series.iter().map(|s| s.label.len().max(7)).collect();
        write!(f, "  {:<x_width$}", self.x_label)?;
        for (s, w) in self.series.iter().zip(&widths) {
            write!(f, "  {:>w$}", s.label)?;
        }
        writeln!(f)?;
        for (row, x) in xs.iter().enumerate() {
            write!(f, "  {x:<x_width$}")?;
            for (s, w) in self.series.iter().zip(&widths) {
                match s.points.get(row) {
                    Some(p) => write!(f, "  {:>w$.2}", p.gbps)?,
                    None => write!(f, "  {:>w$}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A placement-sensitivity figure: per x value, the min/median/mean/max
/// bandwidth over random logical→physical SPE placements.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadFigure {
    /// Paper identifier ("13a", "16b", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// One summary row per swept value.
    pub rows: Vec<(String, Summary)>,
}

impl SpreadFigure {
    /// The largest max−min spread across rows — the headline
    /// placement-sensitivity number.
    pub fn max_spread(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, s)| s.spread())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for SpreadFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure {} — {} (GB/s over placements)",
            self.id, self.title
        )?;
        let x_width = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8);
        writeln!(
            f,
            "  {:<x_width$}  {:>8}  {:>8}  {:>8}  {:>8}",
            self.x_label, "min", "median", "mean", "max"
        )?;
        for (x, s) in &self.rows {
            writeln!(
                f,
                "  {x:<x_width$}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}",
                s.min, s.median, s.mean, s.max
            )?;
        }
        Ok(())
    }
}

impl Figure {
    /// Renders the figure as CSV: header `x,<series...>`, one row per
    /// swept value. Ready for any plotting tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        let rows = self.series.first().map_or(0, |s| s.points.len());
        for row in 0..rows {
            out.push_str(&self.series[0].points[row].x);
            for s in &self.series {
                out.push(',');
                match s.points.get(row) {
                    Some(p) => out.push_str(&format!("{:.4}", p.gbps)),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl SpreadFigure {
    /// Renders the spread figure as CSV with min/median/mean/max columns.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},min,median,mean,max\n", self.x_label);
        for (x, s) in &self.rows {
            out.push_str(&format!(
                "{x},{:.4},{:.4},{:.4},{:.4}\n",
                s.min, s.median, s.mean, s.max
            ));
        }
        out
    }
}

/// Formats a byte count the way the paper labels its x axes.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{} KB", bytes / 1024)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        Figure {
            id: "t1".into(),
            title: "test".into(),
            x_label: "elem".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![
                        Point {
                            x: "128 B".into(),
                            gbps: 1.5,
                        },
                        Point {
                            x: "1 KB".into(),
                            gbps: 3.25,
                        },
                    ],
                },
                Series {
                    label: "b".into(),
                    points: vec![
                        Point {
                            x: "128 B".into(),
                            gbps: 2.0,
                        },
                        Point {
                            x: "1 KB".into(),
                            gbps: 4.0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn value_lookup_finds_cells() {
        let fig = sample_figure();
        assert_eq!(fig.value("a", "1 KB"), Some(3.25));
        assert_eq!(fig.value("b", "128 B"), Some(2.0));
        assert_eq!(fig.value("c", "128 B"), None);
        assert_eq!(fig.value("a", "2 KB"), None);
    }

    #[test]
    fn figure_renders_all_cells() {
        let text = sample_figure().to_string();
        assert!(text.contains("Figure t1"));
        assert!(text.contains("128 B"));
        assert!(text.contains("3.25"));
        assert!(text.contains("4.00"));
    }

    #[test]
    fn spread_figure_renders_and_spreads() {
        let fig = SpreadFigure {
            id: "t2".into(),
            title: "spread".into(),
            x_label: "elem".into(),
            rows: vec![(
                "1 KB".into(),
                Summary::from_samples(&[1.0, 5.0, 3.0]).unwrap(),
            )],
        };
        assert_eq!(fig.max_spread(), 4.0);
        let text = fig.to_string();
        assert!(text.contains("median"));
        assert!(text.contains("5.00"));
    }

    #[test]
    fn csv_round_trips_structure() {
        let csv = sample_figure().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("elem,a,b"));
        assert_eq!(lines.next(), Some("128 B,1.5000,2.0000"));
        assert_eq!(lines.next(), Some("1 KB,3.2500,4.0000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn spread_csv_has_summary_columns() {
        let fig = SpreadFigure {
            id: "t3".into(),
            title: "spread".into(),
            x_label: "elem".into(),
            rows: vec![("2 KB".into(), Summary::from_samples(&[2.0, 4.0]).unwrap())],
        };
        let csv = fig.to_csv();
        assert!(csv.starts_with("elem,min,median,mean,max\n"));
        assert!(csv.contains("2 KB,2.0000,3.0000,3.0000,4.0000"));
    }

    #[test]
    fn byte_formatting_matches_paper_axes() {
        assert_eq!(format_bytes(128), "128 B");
        assert_eq!(format_bytes(1024), "1 KB");
        assert_eq!(format_bytes(16384), "16 KB");
        assert_eq!(format_bytes(100), "100 B");
    }
}
