//! Runtime execution reports.

use std::fmt;

/// Occupancy of one SPE lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneUsage {
    /// Logical SPE index.
    pub spe: usize,
    /// Tasks executed on this lane.
    pub tasks: usize,
    /// Bus cycles the lane's DMA traffic needed (measured on the fabric,
    /// with all lanes contending).
    pub comm_cycles: u64,
    /// Bus cycles of SPU compute assigned to the lane.
    pub comp_cycles: u64,
}

impl LaneUsage {
    /// With double buffering, the lane finishes when the slower of its
    /// two overlapped activities does.
    pub fn busy_cycles(&self) -> u64 {
        self.comm_cycles.max(self.comp_cycles)
    }

    /// Whether the fabric (rather than the SPU) bounds this lane.
    pub fn is_memory_bound(&self) -> bool {
        self.comm_cycles >= self.comp_cycles
    }
}

/// Outcome of executing a task set.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Tasks executed.
    pub tasks: usize,
    /// Active SPE lanes.
    pub lanes: Vec<LaneUsage>,
    /// Predicted completion time in bus cycles (slowest lane).
    pub makespan_cycles: u64,
    /// Sustained useful GFLOP/s over the makespan.
    pub gflops: f64,
    /// Total payload bytes the job moved.
    pub total_bytes: u64,
}

impl RuntimeReport {
    /// Tasks per second at the simulated clock.
    pub fn tasks_per_second(&self, bus_hz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.tasks as f64 * bus_hz / self.makespan_cycles as f64
    }

    /// Lanes whose DMA traffic, not compute, is the limit.
    pub fn memory_bound_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_memory_bound()).count()
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tasks over {} lanes: makespan {} cycles, {:.2} GFLOP/s",
            self.tasks,
            self.lanes.len(),
            self.makespan_cycles,
            self.gflops
        )?;
        for l in &self.lanes {
            writeln!(
                f,
                "  SPE{} : {:>3} tasks  comm {:>9}  comp {:>9}  bound: {}",
                l.spe,
                l.tasks,
                l.comm_cycles,
                l.comp_cycles,
                if l.is_memory_bound() {
                    "memory"
                } else {
                    "compute"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_usage_overlaps_comm_and_comp() {
        let l = LaneUsage {
            spe: 0,
            tasks: 3,
            comm_cycles: 100,
            comp_cycles: 40,
        };
        assert_eq!(l.busy_cycles(), 100);
        assert!(l.is_memory_bound());
    }

    #[test]
    fn report_rates_and_rendering() {
        let r = RuntimeReport {
            tasks: 10,
            lanes: vec![LaneUsage {
                spe: 0,
                tasks: 10,
                comm_cycles: 1000,
                comp_cycles: 2000,
            }],
            makespan_cycles: 2000,
            gflops: 1.5,
            total_bytes: 4096,
        };
        // 10 tasks / (2000 cycles / 1.05e9 Hz)
        let tps = r.tasks_per_second(1.05e9);
        assert!((tps - 5.25e6).abs() < 1.0);
        assert_eq!(r.memory_bound_lanes(), 0);
        assert!(r.to_string().contains("compute"));
    }
}
