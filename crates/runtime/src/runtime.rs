//! The scheduler and executor.

use std::error::Error;
use std::fmt;

use cellsim_core::{CellSystem, Placement, PlanError, TransferPlan};
use cellsim_kernels::SpuComputeModel;

use crate::report::{LaneUsage, RuntimeReport};
use crate::task::Task;

/// Why a job could not be executed.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The task list was empty.
    NoTasks,
    /// Lane count outside 1..=8.
    BadLaneCount(usize),
    /// A task block size violates the quadword rule.
    BadBlockSize {
        /// Offending task name.
        task: String,
        /// Offending block size.
        bytes: u64,
    },
    /// The generated transfer plan was invalid.
    Plan(PlanError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoTasks => write!(f, "no tasks to execute"),
            RuntimeError::BadLaneCount(n) => write!(f, "lane count {n} outside 1..=8"),
            RuntimeError::BadBlockSize { task, bytes } => {
                write!(
                    f,
                    "task {task}: block of {bytes} bytes is not a multiple of 16"
                )
            }
            RuntimeError::Plan(e) => write!(f, "plan construction failed: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for RuntimeError {
    fn from(e: PlanError) -> Self {
        RuntimeError::Plan(e)
    }
}

/// A CellSs-style streaming runtime over `lanes` SPEs of a simulated
/// machine. See the [crate-level example](crate).
#[derive(Debug)]
pub struct StreamRuntime<'a> {
    system: &'a CellSystem,
    lanes: usize,
    compute: SpuComputeModel,
}

impl<'a> StreamRuntime<'a> {
    /// A runtime using logical SPEs `0..lanes`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lanes <= 8` (use [`StreamRuntime::try_new`]
    /// for a fallible variant).
    pub fn new(system: &'a CellSystem, lanes: usize) -> StreamRuntime<'a> {
        StreamRuntime::try_new(system, lanes).expect("lane count in 1..=8")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadLaneCount`] outside 1..=8.
    pub fn try_new(
        system: &'a CellSystem,
        lanes: usize,
    ) -> Result<StreamRuntime<'a>, RuntimeError> {
        if !(1..=8).contains(&lanes) {
            return Err(RuntimeError::BadLaneCount(lanes));
        }
        Ok(StreamRuntime {
            system,
            lanes,
            compute: SpuComputeModel::new(system.config().clock),
        })
    }

    /// The number of SPE lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Assigns tasks to lanes (least-loaded first) and predicts the
    /// job's execution: the whole job's DMA traffic runs through the
    /// simulated fabric — so lanes contend for rings and banks exactly
    /// as the paper measures — while each lane's compute overlaps its
    /// communication (double buffering).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for an empty job or invalid block
    /// sizes.
    pub fn execute(&self, tasks: &[Task]) -> Result<RuntimeReport, RuntimeError> {
        if tasks.is_empty() {
            return Err(RuntimeError::NoTasks);
        }
        for t in tasks {
            for &b in t.inputs().iter().chain(t.outputs()) {
                if b == 0 || b % 16 != 0 {
                    return Err(RuntimeError::BadBlockSize {
                        task: t.name().to_string(),
                        bytes: b,
                    });
                }
            }
        }

        // Least-loaded scheduling; load is the lane's overlapped busy
        // estimate (max of its comm and comp equivalents, in bytes).
        let clock = self.system.config().clock;
        let comm_bytes_per_bus_cycle = 9.5; // the ~10 GB/s single-lane rate
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); self.lanes];
        let mut comm_load = vec![0f64; self.lanes];
        let mut comp_load = vec![0f64; self.lanes];
        for (i, t) in tasks.iter().enumerate() {
            let lane = (0..self.lanes)
                .min_by(|&a, &b| {
                    let la = comm_load[a].max(comp_load[a]);
                    let lb = comm_load[b].max(comp_load[b]);
                    la.partial_cmp(&lb).expect("finite loads")
                })
                .expect("at least one lane");
            assignment[lane].push(i);
            comm_load[lane] += t.total_bytes() as f64;
            let comp_bus = clock
                .cpu_to_bus_cycles(self.compute.cycles_for(t.precision(), t.flop_count()) as u64);
            comp_load[lane] += comp_bus as f64 * comm_bytes_per_bus_cycle;
        }

        // Build the whole job's DMA traffic.
        let mut builder = TransferPlan::builder();
        for (lane, task_ids) in assignment.iter().enumerate() {
            let mut in_off = 0u64;
            let mut out_off = 0u64;
            for &ti in task_ids {
                let t = &tasks[ti];
                for &b in t.inputs() {
                    builder = builder.get_block(lane, TransferPlan::get_region(lane), in_off, b);
                    in_off += b;
                }
                for &b in t.outputs() {
                    builder = builder.put_block(lane, TransferPlan::put_region(lane), out_off, b);
                    out_off += b;
                }
            }
        }
        let plan = builder.build()?;
        let fabric = self.system.try_run(&Placement::identity(), &plan).unwrap();

        // Per-lane occupancy: measured communication, analytic compute.
        let mut lanes = Vec::with_capacity(self.lanes);
        let mut total_flops = 0.0;
        for (lane, task_ids) in assignment.iter().enumerate() {
            let comp_cpu: f64 = task_ids
                .iter()
                .map(|&ti| {
                    let t = &tasks[ti];
                    total_flops += t.flop_count();
                    self.compute.cycles_for(t.precision(), t.flop_count())
                })
                .sum();
            lanes.push(LaneUsage {
                spe: lane,
                tasks: task_ids.len(),
                comm_cycles: fabric.per_spe_cycles[lane],
                comp_cycles: clock.cpu_to_bus_cycles(comp_cpu.ceil() as u64),
            });
        }
        let makespan_cycles = lanes
            .iter()
            .map(LaneUsage::busy_cycles)
            .max()
            .expect("at least one lane");
        let seconds = clock.seconds(makespan_cycles);
        Ok(RuntimeReport {
            tasks: tasks.len(),
            lanes,
            makespan_cycles,
            gflops: if seconds > 0.0 {
                total_flops / seconds / 1e9
            } else {
                0.0
            },
            total_bytes: fabric.total_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_task(i: usize) -> Task {
        Task::new(format!("s{i}"))
            .input(64 << 10)
            .output(64 << 10)
            .flops(1_000.0)
    }

    fn heavy_task(i: usize) -> Task {
        Task::new(format!("h{i}"))
            .input(16 << 10)
            .flops(50_000_000.0)
    }

    #[test]
    fn streaming_job_is_memory_bound() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 4);
        let tasks: Vec<Task> = (0..32).map(streaming_task).collect();
        let r = rt.execute(&tasks).unwrap();
        assert_eq!(r.tasks, 32);
        assert_eq!(r.memory_bound_lanes(), 4);
        assert_eq!(r.total_bytes, 32 * (128 << 10));
    }

    #[test]
    fn compute_heavy_job_is_compute_bound() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 2);
        let tasks: Vec<Task> = (0..8).map(heavy_task).collect();
        let r = rt.execute(&tasks).unwrap();
        assert_eq!(r.memory_bound_lanes(), 0);
        // 8 x 50 MFLOP on 2 SPUs at 8.4 GFLOP/s each.
        assert!(r.gflops > 10.0, "{r}");
    }

    #[test]
    fn more_lanes_shrink_the_makespan() {
        let sys = CellSystem::blade();
        let tasks: Vec<Task> = (0..32).map(streaming_task).collect();
        let one = StreamRuntime::new(&sys, 1).execute(&tasks).unwrap();
        let four = StreamRuntime::new(&sys, 4).execute(&tasks).unwrap();
        assert!(
            four.makespan_cycles < one.makespan_cycles,
            "{} vs {}",
            four.makespan_cycles,
            one.makespan_cycles
        );
    }

    #[test]
    fn scheduler_balances_task_counts() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 4);
        let tasks: Vec<Task> = (0..40).map(streaming_task).collect();
        let r = rt.execute(&tasks).unwrap();
        for lane in &r.lanes {
            assert_eq!(lane.tasks, 10, "uniform tasks spread uniformly");
        }
    }

    #[test]
    fn mixed_jobs_put_heavy_tasks_on_emptier_lanes() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 2);
        let mut tasks: Vec<Task> = (0..4).map(heavy_task).collect();
        tasks.extend((0..4).map(streaming_task));
        let r = rt.execute(&tasks).unwrap();
        // Both lanes have work.
        assert!(r.lanes.iter().all(|l| l.tasks > 0));
    }

    #[test]
    fn errors_are_reported() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 2);
        assert_eq!(rt.execute(&[]), Err(RuntimeError::NoTasks));
        let bad = Task::new("bad").input(100); // not a multiple of 16
        assert!(matches!(
            rt.execute(&[bad]),
            Err(RuntimeError::BadBlockSize { bytes: 100, .. })
        ));
        assert!(matches!(
            StreamRuntime::try_new(&sys, 9),
            Err(RuntimeError::BadLaneCount(9))
        ));
    }

    #[test]
    fn dp_tasks_take_far_longer() {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, 1);
        let sp = Task::new("sp").input(16 << 10).flops(10_000_000.0);
        let dp = Task::new("dp")
            .input(16 << 10)
            .flops(10_000_000.0)
            .double_precision();
        let rs = rt.execute(&[sp]).unwrap();
        let rd = rt.execute(&[dp]).unwrap();
        assert!(
            rd.makespan_cycles > 20 * rs.makespan_cycles,
            "{} vs {}",
            rd.makespan_cycles,
            rs.makespan_cycles
        );
    }
}
