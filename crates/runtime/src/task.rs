//! Task descriptors.

use cellsim_kernels::Precision;

/// One schedulable unit of work: operand blocks plus a FLOP count.
///
/// Blocks are sized in bytes; the runtime allocates them in per-lane
/// memory regions and splits them into valid DMA commands. Sizes must be
/// multiples of 16 bytes (the CBE's quadword rule).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    name: String,
    inputs: Vec<u64>,
    outputs: Vec<u64>,
    flops: f64,
    precision: Precision,
}

impl Task {
    /// A task with no operands and no work; chain the builder methods.
    pub fn new(name: impl Into<String>) -> Task {
        Task {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            flops: 0.0,
            precision: Precision::Single,
        }
    }

    /// Adds an input block of `bytes` bytes (DMAed in before compute).
    pub fn input(mut self, bytes: u64) -> Task {
        self.inputs.push(bytes);
        self
    }

    /// Adds an output block of `bytes` bytes (DMAed out after compute).
    pub fn output(mut self, bytes: u64) -> Task {
        self.outputs.push(bytes);
        self
    }

    /// Sets the task's useful FLOPs.
    pub fn flops(mut self, flops: f64) -> Task {
        self.flops = flops;
        self
    }

    /// Switches the task to double precision (the slow SPU pipe).
    pub fn double_precision(mut self) -> Task {
        self.precision = Precision::Double;
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input block sizes.
    pub fn inputs(&self) -> &[u64] {
        &self.inputs
    }

    /// Output block sizes.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Useful FLOPs.
    pub fn flop_count(&self) -> f64 {
        self.flops
    }

    /// Arithmetic precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Total DMA bytes this task moves (both directions).
    pub fn total_bytes(&self) -> u64 {
        self.inputs.iter().sum::<u64>() + self.outputs.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_operands() {
        let t = Task::new("gemm")
            .input(1024)
            .input(2048)
            .output(512)
            .flops(1e6);
        assert_eq!(t.name(), "gemm");
        assert_eq!(t.inputs(), &[1024, 2048]);
        assert_eq!(t.outputs(), &[512]);
        assert_eq!(t.total_bytes(), 3584);
        assert_eq!(t.flop_count(), 1e6);
        assert_eq!(t.precision(), Precision::Single);
    }

    #[test]
    fn double_precision_is_sticky() {
        let t = Task::new("dp").double_precision();
        assert_eq!(t.precision(), Precision::Double);
    }
}
