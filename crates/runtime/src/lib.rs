//! A CellSs-style task runtime model on the simulated Cell BE.
//!
//! The paper's related work discusses CellSs (Bellens et al.): a
//! programming model where the programmer writes *tasks* and a runtime
//! schedules them onto SPEs, moving their operands by DMA. The paper
//! closes by noting that its bandwidth results "would be very useful in
//! optimizing the runtime library used in such programming model" — this
//! crate is that application.
//!
//! * [`Task`] — inputs, outputs (memory blocks) and a FLOP count;
//! * [`StreamRuntime`] — schedules tasks over N SPEs (least-loaded
//!   first), runs the *actual DMA traffic* of the whole job through the
//!   simulated fabric (so contention between SPEs is real, not a
//!   formula), overlaps communication with compute per the double-
//!   buffering rule, and reports the predicted makespan;
//! * [`RuntimeReport`] — per-SPE communication/compute occupancy and the
//!   binding resource.
//!
//! # Example
//!
//! ```
//! use cellsim_core::CellSystem;
//! use cellsim_runtime::{StreamRuntime, Task};
//!
//! let system = CellSystem::blade();
//! let runtime = StreamRuntime::new(&system, 4);
//! // 64 independent tasks, each streaming 64 KiB in and 16 KiB out
//! // with 100 kFLOP of work.
//! let tasks: Vec<Task> = (0..64)
//!     .map(|i| Task::new(format!("t{i}"))
//!         .input(64 << 10)
//!         .output(16 << 10)
//!         .flops(100_000.0))
//!     .collect();
//! let report = runtime.execute(&tasks)?;
//! assert_eq!(report.tasks, 64);
//! assert!(report.makespan_cycles > 0);
//! # Ok::<(), cellsim_runtime::RuntimeError>(())
//! ```

mod report;
mod runtime;
mod task;

pub use report::{LaneUsage, RuntimeReport};
pub use runtime::{RuntimeError, StreamRuntime};
pub use task::Task;
