//! Property tests for the task runtime.

use cellsim_core::CellSystem;
use cellsim_runtime::{StreamRuntime, Task};
use proptest::prelude::*;

fn task() -> impl Strategy<Value = Task> {
    (1u64..=8, 0u64..=8, 0u64..200_000u64).prop_map(|(inp, out, kflops)| {
        let mut t = Task::new("t")
            .input(inp * 16 * 1024)
            .flops(kflops as f64 * 1e3);
        if out > 0 {
            t = t.output(out * 16 * 1024);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the job, the runtime's makespan is at least each lane's
    /// own busy time and the byte accounting is exact.
    #[test]
    fn makespan_bounds_and_byte_accounting(
        tasks in proptest::collection::vec(task(), 1..24),
        lanes in 1usize..=8,
    ) {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, lanes);
        let report = rt.execute(&tasks).unwrap();
        prop_assert_eq!(report.tasks, tasks.len());
        let expected: u64 = tasks.iter().map(Task::total_bytes).sum();
        prop_assert_eq!(report.total_bytes, expected);
        for lane in &report.lanes {
            prop_assert!(report.makespan_cycles >= lane.busy_cycles());
        }
        let assigned: usize = report.lanes.iter().map(|l| l.tasks).sum();
        prop_assert_eq!(assigned, tasks.len());
    }

    /// The least-loaded scheduler never assigns a lane more than twice
    /// the tasks of another when tasks are identical.
    #[test]
    fn uniform_tasks_balance(n in 1usize..40, lanes in 1usize..=8) {
        let sys = CellSystem::blade();
        let rt = StreamRuntime::new(&sys, lanes);
        let tasks: Vec<Task> = (0..n)
            .map(|_| Task::new("u").input(32 << 10).flops(1e4))
            .collect();
        let report = rt.execute(&tasks).unwrap();
        let max = report.lanes.iter().map(|l| l.tasks).max().unwrap();
        let min = report.lanes.iter().map(|l| l.tasks).min().unwrap();
        prop_assert!(max - min <= 1, "max={} min={}", max, min);
    }

    /// Makespan never grows when lanes are added.
    #[test]
    fn lanes_never_hurt(n in 2usize..16) {
        let sys = CellSystem::blade();
        let tasks: Vec<Task> = (0..n)
            .map(|_| Task::new("w").input(64 << 10).flops(5e5))
            .collect();
        let two = StreamRuntime::new(&sys, 2).execute(&tasks).unwrap();
        let eight = StreamRuntime::new(&sys, 8).execute(&tasks).unwrap();
        prop_assert!(
            eight.makespan_cycles <= two.makespan_cycles * 11 / 10,
            "{} vs {}",
            eight.makespan_cycles,
            two.makespan_cycles
        );
    }
}
