//! Seeded, deterministic address-stream generators for application-shaped
//! workloads.
//!
//! The ISPASS 2007 paper measures contiguous streams; the related work
//! measures what Cell was actually used for: GUPS-style random access for
//! graph analysis, lattice-QCD stencil streaming with fixed neighbor halo
//! exchange, and biomolecular pair-list gather/scatter. This crate
//! generates those access patterns as plain effective-address streams —
//! [`cellsim_mfc::ListElement`] batches and element offsets — which
//! `cellsim-core` compiles into per-SPE `SpeScript`s/`TransferPlan`s on
//! the existing DMA-elem/DMA-list machinery.
//!
//! # Determinism
//!
//! Every stream is a pure function of its parameter struct and the
//! consumer-supplied indices: generation is counter-based
//! ([`cellsim_kernel::rng::derive_seed`] of `seed ⊕ spe ⊕ index`), never
//! stateful, so streams are identical regardless of generation order,
//! thread count, or how many elements the consumer asks for first.
//!
//! # Parameter packing
//!
//! Each parameter struct packs losslessly into a `u64`
//! (`pack`/`unpack`), which callers fold into their run-cache keys: two
//! runs with equal packed parameters generate identical streams, and any
//! parameter change changes the key.

use std::fmt;

use cellsim_kernel::rng::derive_seed;
use cellsim_mfc::{ListElement, MAX_DMA_BYTES};

/// Why a parameter word or stream request is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A table size exponent outside the supported range.
    BadTableLog2(u8),
    /// A GUPS access granularity that is not a valid DMA size in 8..=128.
    BadGrain(u32),
    /// A packed parameter word with bits set outside its layout.
    BadPacked(u64),
    /// A grid-shape exponent outside the supported range.
    BadShape {
        /// log2 of the subgrid rows.
        rows_log2: u8,
        /// log2 of the subgrid columns.
        cols_log2: u8,
    },
    /// A halo width that is zero or does not fit the subgrid.
    BadHalo {
        /// The rejected halo width in cells.
        halo: u32,
    },
    /// A pair-list record size that is not a quadword-multiple DMA size.
    BadRecord(u32),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::BadTableLog2(l) => {
                write!(
                    f,
                    "table_log2 {l} outside {MIN_TABLE_LOG2}..={MAX_TABLE_LOG2}"
                )
            }
            StreamError::BadGrain(g) => {
                write!(f, "grain {g} is not a power-of-two DMA size in 8..=128")
            }
            StreamError::BadPacked(p) => write!(f, "packed parameter word {p:#x} is malformed"),
            StreamError::BadShape {
                rows_log2,
                cols_log2,
            } => write!(
                f,
                "subgrid shape 2^{rows_log2} x 2^{cols_log2} outside the supported range"
            ),
            StreamError::BadHalo { halo } => {
                write!(f, "halo width {halo} is zero or does not fit the subgrid")
            }
            StreamError::BadRecord(r) => write!(
                f,
                "record size {r} is not a power-of-two quadword multiple <= {MAX_DMA_BYTES}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Smallest supported lookup-table exponent (4 KiB).
pub const MIN_TABLE_LOG2: u8 = 12;
/// Largest supported lookup-table exponent (16 MiB — half a memory
/// region, so a table always fits the owning SPE's region).
pub const MAX_TABLE_LOG2: u8 = 24;

fn check_table_log2(table_log2: u8) -> Result<(), StreamError> {
    if (MIN_TABLE_LOG2..=MAX_TABLE_LOG2).contains(&table_log2) {
        Ok(())
    } else {
        Err(StreamError::BadTableLog2(table_log2))
    }
}

/// The `i`-th draw of the stream `(seed, lane)`: counter-based, so any
/// element can be generated without generating its predecessors.
fn draw(seed: u64, lane: u64, i: u64) -> u64 {
    derive_seed(seed ^ lane.wrapping_mul(0xA076_1D64_78BD_642F), i)
}

// ---------------------------------------------------------------------------
// GUPS
// ---------------------------------------------------------------------------

/// Parameters of a GUPS random-update stream: every access reads (and
/// writes back) one `grain`-byte entry at a uniformly random quadword-
/// aligned slot of a `2^table_log2`-byte table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GupsParams {
    /// log2 of the per-SPE table size in bytes.
    pub table_log2: u8,
    /// Stream seed; each SPE derives an independent lane from it.
    pub seed: u32,
}

impl GupsParams {
    /// Packs into the `u64` run-key parameter word.
    #[must_use]
    pub fn pack(&self) -> u64 {
        (u64::from(self.table_log2) << 32) | u64::from(self.seed)
    }

    /// Unpacks and validates a parameter word.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadPacked`] for stray bits,
    /// [`StreamError::BadTableLog2`] for an out-of-range table.
    pub fn unpack(packed: u64) -> Result<GupsParams, StreamError> {
        if packed >> 40 != 0 {
            return Err(StreamError::BadPacked(packed));
        }
        let p = GupsParams {
            table_log2: ((packed >> 32) & 0xFF) as u8,
            seed: (packed & 0xFFFF_FFFF) as u32,
        };
        check_table_log2(p.table_log2)?;
        Ok(p)
    }

    /// The table size in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        1u64 << self.table_log2
    }

    /// The first `count` table offsets of SPE `spe`'s update stream, for
    /// `grain`-byte accesses. Offsets are multiples of
    /// `max(grain, 16)` — quadword-aligned on both the EA and (via the
    /// plan compiler's matching slot stride) the Local Store side, as
    /// sub-quadword DMA requires — and every access fits the table.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadGrain`] unless `grain` is a power of two in
    /// 8..=128; [`StreamError::BadTableLog2`] if the table is
    /// out of range.
    pub fn offsets(&self, spe: u8, count: u64, grain: u32) -> Result<Vec<u64>, StreamError> {
        check_table_log2(self.table_log2)?;
        if !grain.is_power_of_two() || !(8..=128).contains(&grain) {
            return Err(StreamError::BadGrain(grain));
        }
        let stride = u64::from(grain.max(16));
        let slots = self.table_bytes() / stride;
        let seed = u64::from(self.seed);
        Ok((0..count)
            .map(|i| (draw(seed, u64::from(spe), i) % slots) * stride)
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Stencil
// ---------------------------------------------------------------------------

/// Bytes per stencil grid cell. 16 B keeps every face element and row a
/// quadword multiple, so arbitrary face offsets stay DMA-legal.
pub const CELL_BYTES: u32 = 16;

/// Largest supported subgrid exponent per dimension (2^11 cells).
pub const MAX_SHAPE_LOG2: u8 = 11;

/// Parameters of one SPE's stencil subgrid: `2^rows_log2` rows of
/// `2^cols_log2` cells ([`CELL_BYTES`] each), stored row-major in the
/// owning SPE's memory region. Halo exchange reads face cells from
/// neighbor subgrids: east/west faces are row-strided DMA lists (one
/// `halo x CELL_BYTES` element per row), north/south faces are
/// contiguous row runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilParams {
    /// log2 of the subgrid rows.
    pub rows_log2: u8,
    /// log2 of the subgrid columns (cells per row).
    pub cols_log2: u8,
}

impl StencilParams {
    /// Packs into the `u64` run-key parameter word.
    #[must_use]
    pub fn pack(&self) -> u64 {
        (u64::from(self.rows_log2) << 8) | u64::from(self.cols_log2)
    }

    /// Unpacks and validates a parameter word.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadPacked`] for stray bits,
    /// [`StreamError::BadShape`] for an out-of-range shape.
    pub fn unpack(packed: u64) -> Result<StencilParams, StreamError> {
        if packed >> 16 != 0 {
            return Err(StreamError::BadPacked(packed));
        }
        let p = StencilParams {
            rows_log2: ((packed >> 8) & 0xFF) as u8,
            cols_log2: (packed & 0xFF) as u8,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), StreamError> {
        // At least 2 cells per dimension (a face must leave an interior)
        // and a row must fit one DMA command.
        let ok = (1..=MAX_SHAPE_LOG2).contains(&self.rows_log2)
            && (1..=MAX_SHAPE_LOG2).contains(&self.cols_log2)
            && self.row_bytes() <= MAX_DMA_BYTES;
        if ok {
            Ok(())
        } else {
            Err(StreamError::BadShape {
                rows_log2: self.rows_log2,
                cols_log2: self.cols_log2,
            })
        }
    }

    /// Rows in the subgrid.
    #[must_use]
    pub fn rows(&self) -> u32 {
        1 << self.rows_log2
    }

    /// Cells per row.
    #[must_use]
    pub fn cols(&self) -> u32 {
        1 << self.cols_log2
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> u32 {
        self.cols() * CELL_BYTES
    }

    /// Total subgrid payload in bytes.
    #[must_use]
    pub fn interior_bytes(&self) -> u64 {
        u64::from(self.rows()) * u64::from(self.row_bytes())
    }

    /// Checks a halo width against this shape: nonzero, at most half of
    /// either dimension.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadHalo`]; [`StreamError::BadShape`] if the shape
    /// itself is invalid.
    pub fn validate_halo(&self, halo: u32) -> Result<(), StreamError> {
        self.validate()?;
        if halo == 0 || halo > self.cols() / 2 || halo > self.rows() / 2 {
            return Err(StreamError::BadHalo { halo });
        }
        Ok(())
    }

    /// The west face: the first `halo` cells of every row — one
    /// row-strided list element per row.
    ///
    /// # Errors
    ///
    /// See [`StencilParams::validate_halo`].
    pub fn west_face(&self, halo: u32) -> Result<Vec<ListElement>, StreamError> {
        self.strided_face(halo, 0)
    }

    /// The east face: the last `halo` cells of every row.
    ///
    /// # Errors
    ///
    /// See [`StencilParams::validate_halo`].
    pub fn east_face(&self, halo: u32) -> Result<Vec<ListElement>, StreamError> {
        self.strided_face(halo, self.cols().saturating_sub(halo))
    }

    fn strided_face(&self, halo: u32, col: u32) -> Result<Vec<ListElement>, StreamError> {
        self.validate_halo(halo)?;
        let stride = u64::from(self.row_bytes());
        let bytes = halo * CELL_BYTES;
        Ok((0..self.rows())
            .map(|row| ListElement {
                ea_offset: u64::from(row) * stride + u64::from(col) * u64::from(CELL_BYTES),
                bytes,
            })
            .collect())
    }

    /// The north face: the first `halo` rows, one contiguous list
    /// element per row.
    ///
    /// # Errors
    ///
    /// See [`StencilParams::validate_halo`].
    pub fn north_face(&self, halo: u32) -> Result<Vec<ListElement>, StreamError> {
        self.contiguous_face(halo, 0)
    }

    /// The south face: the last `halo` rows.
    ///
    /// # Errors
    ///
    /// See [`StencilParams::validate_halo`].
    pub fn south_face(&self, halo: u32) -> Result<Vec<ListElement>, StreamError> {
        self.contiguous_face(halo, self.rows().saturating_sub(halo))
    }

    fn contiguous_face(&self, halo: u32, first_row: u32) -> Result<Vec<ListElement>, StreamError> {
        self.validate_halo(halo)?;
        let stride = u64::from(self.row_bytes());
        Ok((first_row..first_row + halo)
            .map(|row| ListElement {
                ea_offset: u64::from(row) * stride,
                bytes: self.row_bytes(),
            })
            .collect())
    }

    /// Total face bytes one SPE gathers per timestep (east + west
    /// strided faces plus north + south contiguous faces).
    ///
    /// # Errors
    ///
    /// See [`StencilParams::validate_halo`].
    pub fn halo_bytes(&self, halo: u32) -> Result<u64, StreamError> {
        self.validate_halo(halo)?;
        let ew = 2 * u64::from(self.rows()) * u64::from(halo * CELL_BYTES);
        let ns = 2 * u64::from(halo) * u64::from(self.row_bytes());
        Ok(ew + ns)
    }
}

// ---------------------------------------------------------------------------
// Pair list
// ---------------------------------------------------------------------------

/// Number of hot-set reuse draws out of every 4: 3 in 4 indices land in
/// the hot set — the skewed reuse of a biomolecular pair list, where a
/// few heavily-bonded particles appear in most pairs.
const HOT_DRAWS_IN_4: u64 = 3;

/// Parameters of a pair-list gather/scatter stream: indexed accesses
/// into a `2^table_log2`-byte particle table, skewed so most draws
/// revisit a `2^hot_log2`-entry hot set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairlistParams {
    /// log2 of the per-SPE particle-table size in bytes.
    pub table_log2: u8,
    /// log2 of the hot-set size in records.
    pub hot_log2: u8,
    /// Stream seed; each SPE derives an independent lane from it.
    pub seed: u32,
}

impl PairlistParams {
    /// Packs into the `u64` run-key parameter word.
    #[must_use]
    pub fn pack(&self) -> u64 {
        (u64::from(self.table_log2) << 40) | (u64::from(self.hot_log2) << 32) | u64::from(self.seed)
    }

    /// Unpacks and validates a parameter word.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadPacked`] for stray bits,
    /// [`StreamError::BadTableLog2`] for an out-of-range table.
    pub fn unpack(packed: u64) -> Result<PairlistParams, StreamError> {
        if packed >> 48 != 0 {
            return Err(StreamError::BadPacked(packed));
        }
        let p = PairlistParams {
            table_log2: ((packed >> 40) & 0xFF) as u8,
            hot_log2: ((packed >> 32) & 0xFF) as u8,
            seed: (packed & 0xFFFF_FFFF) as u32,
        };
        check_table_log2(p.table_log2)?;
        if p.hot_log2 >= p.table_log2 {
            return Err(StreamError::BadPacked(packed));
        }
        Ok(p)
    }

    /// The table size in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        1u64 << self.table_log2
    }

    /// The first `count` indexed list elements of SPE `spe`'s pair
    /// stream for `record_bytes`-sized particle records: each element
    /// addresses one whole record, three in four from the hot set.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadRecord`] unless `record_bytes` is a
    /// power-of-two quadword multiple that fits one DMA command;
    /// [`StreamError::BadTableLog2`] if the table is out of range.
    pub fn elements(
        &self,
        spe: u8,
        count: u64,
        record_bytes: u32,
    ) -> Result<Vec<ListElement>, StreamError> {
        check_table_log2(self.table_log2)?;
        let valid = record_bytes.is_power_of_two()
            && (16..=MAX_DMA_BYTES).contains(&record_bytes)
            && u64::from(record_bytes) < self.table_bytes();
        if !valid {
            return Err(StreamError::BadRecord(record_bytes));
        }
        let slots = self.table_bytes() / u64::from(record_bytes);
        let hot = (1u64 << self.hot_log2).min(slots);
        let seed = u64::from(self.seed);
        Ok((0..count)
            .map(|i| {
                let r = draw(seed, u64::from(spe), i);
                let idx = if r & 3 < HOT_DRAWS_IN_4 {
                    (r >> 2) % hot
                } else {
                    (r >> 2) % slots
                };
                ListElement {
                    ea_offset: idx * u64::from(record_bytes),
                    bytes: record_bytes,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gups_pack_round_trips_and_rejects_stray_bits() {
        let p = GupsParams {
            table_log2: 24,
            seed: 0xDEAD_BEEF,
        };
        assert_eq!(GupsParams::unpack(p.pack()), Ok(p));
        assert_eq!(
            GupsParams::unpack(1 << 41),
            Err(StreamError::BadPacked(1 << 41))
        );
        assert_eq!(
            GupsParams::unpack(u64::from(8u8) << 32),
            Err(StreamError::BadTableLog2(8))
        );
    }

    #[test]
    fn gups_offsets_are_aligned_in_range_and_deterministic() {
        let p = GupsParams {
            table_log2: 16,
            seed: 7,
        };
        for grain in [8u32, 16, 32, 64, 128] {
            let offs = p.offsets(3, 500, grain).unwrap();
            assert_eq!(offs.len(), 500);
            for &o in &offs {
                assert_eq!(o % u64::from(grain.max(16)), 0);
                assert!(o + u64::from(grain) <= p.table_bytes());
            }
            assert_eq!(offs, p.offsets(3, 500, grain).unwrap(), "pure function");
        }
        // Lanes are independent: two SPEs never share a stream.
        assert_ne!(p.offsets(0, 64, 8).unwrap(), p.offsets(1, 64, 8).unwrap());
        // Counter-based: a longer request extends, never reshuffles.
        let short = p.offsets(0, 10, 8).unwrap();
        let long = p.offsets(0, 20, 8).unwrap();
        assert_eq!(short[..], long[..10]);
    }

    #[test]
    fn gups_rejects_bad_grains() {
        let p = GupsParams {
            table_log2: 16,
            seed: 0,
        };
        for bad in [0u32, 4, 12, 256] {
            assert_eq!(p.offsets(0, 1, bad), Err(StreamError::BadGrain(bad)));
        }
    }

    #[test]
    fn stencil_faces_cover_the_expected_cells() {
        let p = StencilParams {
            rows_log2: 5,
            cols_log2: 6,
        }; // 32 x 64 cells
        assert_eq!(StencilParams::unpack(p.pack()), Ok(p));
        let west = p.west_face(2).unwrap();
        assert_eq!(west.len(), 32);
        assert_eq!(west[0].ea_offset, 0);
        assert_eq!(west[0].bytes, 32);
        assert_eq!(west[1].ea_offset, u64::from(p.row_bytes()));
        let east = p.east_face(2).unwrap();
        assert_eq!(east[0].ea_offset, u64::from((64 - 2) * CELL_BYTES));
        let north = p.north_face(2).unwrap();
        assert_eq!(north.len(), 2);
        assert_eq!(north[1].ea_offset, u64::from(p.row_bytes()));
        assert_eq!(north[1].bytes, p.row_bytes());
        let south = p.south_face(2).unwrap();
        assert_eq!(south[0].ea_offset, 30 * u64::from(p.row_bytes()));
        // All face offsets are quadword multiples: DMA-legal anywhere.
        for el in west.iter().chain(&east).chain(&north).chain(&south) {
            assert_eq!(el.ea_offset % 16, 0);
            assert_eq!(el.bytes % 16, 0);
        }
        let total: u64 = [&west, &east, &north, &south]
            .iter()
            .flat_map(|f| f.iter())
            .map(|e| u64::from(e.bytes))
            .sum();
        assert_eq!(total, p.halo_bytes(2).unwrap());
    }

    #[test]
    fn stencil_rejects_degenerate_halos_and_shapes() {
        let p = StencilParams {
            rows_log2: 5,
            cols_log2: 6,
        };
        assert_eq!(p.validate_halo(0), Err(StreamError::BadHalo { halo: 0 }));
        assert_eq!(p.validate_halo(33), Err(StreamError::BadHalo { halo: 33 }));
        assert!(StencilParams::unpack((12 << 8) | 6).is_err(), "rows 2^12");
        assert!(StencilParams::unpack(1 << 16).is_err(), "stray bits");
    }

    #[test]
    fn pairlist_pack_round_trips_and_skews_into_the_hot_set() {
        let p = PairlistParams {
            table_log2: 20,
            hot_log2: 8,
            seed: 42,
        };
        assert_eq!(PairlistParams::unpack(p.pack()), Ok(p));
        assert!(PairlistParams::unpack((8u64 << 40) | (9 << 32)).is_err());
        let els = p.elements(2, 4000, 32).unwrap();
        assert_eq!(els, p.elements(2, 4000, 32).unwrap(), "pure function");
        let hot_bytes = (1u64 << p.hot_log2) * 32;
        let hot = els.iter().filter(|e| e.ea_offset < hot_bytes).count();
        // 3-in-4 skew, with slack for uniform draws landing low.
        assert!(hot >= 2800, "skewed reuse expected, hot={hot}/4000");
        for e in &els {
            assert_eq!(e.ea_offset % 16, 0);
            assert!(e.ea_offset + u64::from(e.bytes) <= p.table_bytes());
        }
    }

    #[test]
    fn pairlist_rejects_bad_records() {
        let p = PairlistParams {
            table_log2: 16,
            hot_log2: 4,
            seed: 0,
        };
        for bad in [0u32, 8, 24, 32 * 1024] {
            assert_eq!(p.elements(0, 1, bad), Err(StreamError::BadRecord(bad)));
        }
    }
}
